// drrg_cli -- command-line driver for the library: run any algorithm /
// aggregate combination on a synthetic workload and print the result with
// its cost, optionally as CSV for scripting sweeps.
//
//   drrg_cli --algo drr --agg ave --n 8192 --loss 0.1 --trials 5
//   drrg_cli --algo uniform --agg max --n 65536 --csv
//   drrg_cli --algo chord-drr --agg max --n 4096
//   drrg_cli --list
//
// Algorithms: drr (DRR-gossip), uniform (Kempe), efficient (Kashyap),
//             pairwise (Boyd et al.), extrema (Mosk-Aoyama & Shah Count),
//             chord-drr / chord-uniform (§4 sparse pipelines).
// Aggregates: max min ave sum count rank median leader (availability
//             depends on the algorithm; --list prints the matrix).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "drrg.hpp"

namespace {

struct Options {
  std::string algo = "drr";
  std::string agg = "ave";
  std::uint32_t n = 4096;
  std::uint64_t seed = 42;
  double loss = 0.0;
  double crash = 0.0;
  double rank_threshold = 0.0;
  int trials = 1;
  bool csv = false;
};

struct RunRow {
  double value = 0.0;
  double truth = 0.0;
  bool consensus = false;
  std::uint64_t messages = 0;
  std::uint32_t rounds = 0;
};

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: drrg_cli [--algo A] [--agg G] [--n N] [--seed S]\n"
               "                [--loss D] [--crash F] [--threshold X]\n"
               "                [--trials T] [--csv] [--list]\n"
               "  A: drr uniform efficient pairwise extrema chord-drr chord-uniform\n"
               "  G: max min ave sum count rank median leader\n");
  std::exit(code);
}

void list_matrix() {
  std::printf("algorithm      aggregates\n");
  std::printf("-------------  -------------------------------------\n");
  std::printf("drr            max min ave sum count rank median leader\n");
  std::printf("uniform        max ave\n");
  std::printf("efficient      max ave\n");
  std::printf("pairwise       ave\n");
  std::printf("extrema        count sum\n");
  std::printf("chord-drr      max ave\n");
  std::printf("chord-uniform  max ave\n");
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--algo") opt.algo = next("--algo");
    else if (arg == "--agg") opt.agg = next("--agg");
    else if (arg == "--n") opt.n = static_cast<std::uint32_t>(std::atoll(next("--n")));
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    else if (arg == "--loss") opt.loss = std::atof(next("--loss"));
    else if (arg == "--crash") opt.crash = std::atof(next("--crash"));
    else if (arg == "--threshold") opt.rank_threshold = std::atof(next("--threshold"));
    else if (arg == "--trials") opt.trials = std::atoi(next("--trials"));
    else if (arg == "--csv") opt.csv = true;
    else if (arg == "--list") { list_matrix(); std::exit(0); }
    else if (arg == "--help" || arg == "-h") usage(0);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(2);
    }
  }
  if (opt.n < 4) {
    std::fprintf(stderr, "--n must be >= 4\n");
    usage(2);
  }
  if (opt.trials < 1) opt.trials = 1;
  return opt;
}

std::vector<double> workload(std::uint32_t n, std::uint64_t seed, bool positive) {
  drrg::Rng rng{drrg::derive_seed(seed, 0xc11ULL)};
  std::vector<double> v(n);
  for (auto& x : v) x = positive ? rng.next_uniform(1.0, 100.0) : rng.next_uniform(-50.0, 150.0);
  return v;
}

struct Truths {
  double max, min, sum, ave, count, rank, median;
};

Truths truths_over(const std::vector<double>& values, const std::vector<bool>& alive,
                   double threshold) {
  std::vector<double> live;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (alive.empty() || alive[i]) live.push_back(values[i]);
  std::sort(live.begin(), live.end());
  Truths t{};
  t.count = static_cast<double>(live.size());
  t.min = live.front();
  t.max = live.back();
  t.sum = 0.0;
  t.rank = 0.0;
  for (double v : live) {
    t.sum += v;
    if (v < threshold) ++t.rank;
  }
  t.ave = t.sum / t.count;
  t.median = live[live.size() / 2];
  return t;
}

RunRow run_once(const Options& opt, std::uint64_t seed) {
  using namespace drrg;
  const sim::FaultModel faults{opt.loss, opt.crash};
  const bool positive = opt.algo == "extrema";
  const auto values = workload(opt.n, seed, positive);

  RunRow row;
  auto fill_from_outcome = [&](const AggregateOutcome& o, double truth) {
    row.value = o.value;
    row.truth = truth;
    row.consensus = o.consensus;
    row.messages = o.metrics.total().sent;
    row.rounds = o.rounds_total;
  };

  if (opt.algo == "drr") {
    AggregateOutcome o;
    if (opt.agg == "max") o = drr_gossip_max(opt.n, values, seed, faults);
    else if (opt.agg == "min") o = drr_gossip_min(opt.n, values, seed, faults);
    else if (opt.agg == "ave") o = drr_gossip_ave(opt.n, values, seed, faults);
    else if (opt.agg == "sum") o = drr_gossip_sum(opt.n, values, seed, faults);
    else if (opt.agg == "count") o = drr_gossip_count(opt.n, seed, faults);
    else if (opt.agg == "rank")
      o = drr_gossip_rank(opt.n, values, opt.rank_threshold, seed, faults);
    else if (opt.agg == "median") {
      const auto q = drr_gossip_median(opt.n, values, seed, faults);
      const auto t = truths_over(values, {}, opt.rank_threshold);
      return RunRow{q.value, t.median, true, q.total.sent, 0};
    } else if (opt.agg == "leader") {
      const auto l = drr_gossip_elect_leader(opt.n, seed, faults);
      fill_from_outcome(l.detail, l.detail.value);
      return row;
    } else usage(2);
    const auto t = truths_over(values, o.participating, opt.rank_threshold);
    double truth = 0.0;
    if (opt.agg == "max") truth = t.max;
    else if (opt.agg == "min") truth = t.min;
    else if (opt.agg == "ave") truth = t.ave;
    else if (opt.agg == "sum") truth = t.sum;
    else if (opt.agg == "count") truth = t.count;
    else if (opt.agg == "rank") truth = t.rank;
    fill_from_outcome(o, truth);
    return row;
  }

  const auto t_all = truths_over(values, {}, opt.rank_threshold);
  if (opt.algo == "uniform") {
    if (opt.agg == "max") {
      const auto r = uniform_push_max(opt.n, values, seed, faults);
      const double held = *std::max_element(r.value.begin(), r.value.end());
      return RunRow{held, t_all.max, r.consensus, r.counters.sent, r.rounds_to_consensus};
    }
    if (opt.agg == "ave") {
      const auto r = uniform_push_sum(opt.n, values, seed, faults);
      double first = 0.0;
      for (double e : r.estimate)
        if (e != 0.0) {
          first = e;
          break;
        }
      return RunRow{first, t_all.ave, r.max_relative_error < 1e-3, r.counters.sent,
                    r.counters.rounds};
    }
    usage(2);
  }
  if (opt.algo == "efficient") {
    const auto r = opt.agg == "max" ? efficient_gossip_max(opt.n, values, seed, faults)
                 : opt.agg == "ave" ? efficient_gossip_ave(opt.n, values, seed, faults)
                                    : (usage(2), EfficientGossipResult{});
    return RunRow{r.value, opt.agg == "max" ? t_all.max : t_all.ave, r.consensus,
                  r.counters.sent, r.rounds_total};
  }
  if (opt.algo == "pairwise") {
    if (opt.agg != "ave") usage(2);
    const auto r = pairwise_average(opt.n, values, seed, faults);
    return RunRow{r.value.front(), t_all.ave, r.max_relative_error < 1e-3,
                  r.counters.sent, r.counters.rounds};
  }
  if (opt.algo == "extrema") {
    const auto r = opt.agg == "count" ? drr_gossip_count_extrema(opt.n, seed, faults)
                 : opt.agg == "sum" ? drr_gossip_sum_extrema(opt.n, values, seed, faults)
                                    : (usage(2), ExtremaOutcome{});
    const double truth = opt.agg == "count" ? t_all.count : t_all.sum;
    return RunRow{r.estimate, truth, r.consensus, r.counters.sent, r.rounds_total};
  }
  if (opt.algo == "chord-drr" || opt.algo == "chord-uniform") {
    const ChordOverlay chord{opt.n, seed};
    if (opt.algo == "chord-drr") {
      const Graph links = overlay_graph(chord);
      const auto o = opt.agg == "max"
                         ? sparse_drr_gossip_max(chord, links, values, seed, faults)
                         : opt.agg == "ave"
                               ? sparse_drr_gossip_ave(chord, links, values, seed, faults)
                               : (usage(2), AggregateOutcome{});
      return RunRow{o.value, opt.agg == "max" ? t_all.max : t_all.ave, o.consensus,
                    o.metrics.total().sent, o.rounds_total};
    }
    const auto r = opt.agg == "max"
                       ? chord_uniform_push_max(chord, values, seed, opt.loss)
                       : opt.agg == "ave"
                             ? chord_uniform_push_sum(chord, values, seed, opt.loss)
                             : (usage(2), ChordUniformResult{});
    return RunRow{r.value.front(), opt.agg == "max" ? t_all.max : t_all.ave,
                  opt.agg == "max" ? r.consensus : r.max_relative_error < 1e-2,
                  r.counters.sent, r.rounds};
  }
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  if (opt.csv) {
    std::printf("algo,agg,n,seed,loss,crash,value,truth,consensus,messages,rounds\n");
  } else {
    std::printf("%s / %s on n = %u (loss %.3f, crash %.3f, %d trial%s)\n",
                opt.algo.c_str(), opt.agg.c_str(), opt.n, opt.loss, opt.crash,
                opt.trials, opt.trials == 1 ? "" : "s");
  }

  drrg::Table table{{"seed", "value", "truth", "consensus", "messages", "rounds",
                     "msgs/n"}};
  for (int t = 0; t < opt.trials; ++t) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(t);
    const RunRow row = run_once(opt, seed);
    if (opt.csv) {
      std::printf("%s,%s,%u,%llu,%.4f,%.4f,%.8g,%.8g,%d,%llu,%u\n", opt.algo.c_str(),
                  opt.agg.c_str(), opt.n, static_cast<unsigned long long>(seed),
                  opt.loss, opt.crash, row.value, row.truth, row.consensus ? 1 : 0,
                  static_cast<unsigned long long>(row.messages), row.rounds);
    } else {
      table.row()
          .add_uint(seed)
          .add_real(row.value, 6)
          .add_real(row.truth, 6)
          .add(row.consensus ? "yes" : "no")
          .add_uint(row.messages)
          .add_uint(row.rounds)
          .add_real(static_cast<double>(row.messages) / opt.n, 2);
    }
  }
  if (!opt.csv) {
    std::string rendered = table.to_string();
    std::fputs(rendered.c_str(), stdout);
  }
  return 0;
}
