// drrg_cli -- command-line driver for the library: run any registered
// algorithm / aggregate combination on a synthetic workload and print the
// result with its cost, as a table, as CSV, or as JSON-lines for
// scripting sweeps.
//
//   drrg_cli --algo drr --agg ave --n 8192 --loss 0.1 --trials 5
//   drrg_cli --algo uniform --agg max --n 65536 --csv
//   drrg_cli --algo drr --agg ave --n 4096 --topology chord-ring --json
//   drrg_cli --algo drr --agg count --n 4096 --churn 10:0.1,20:0.1 --csv
//   drrg_cli --algo drr --agg ave --trials 32 --threads 8
//   drrg_cli --list
//
// Dispatch and --list are driven by the drrg::api::Registry: an algorithm
// registered there is immediately runnable and listed here, with no CLI
// changes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/scenario_text.hpp"
#include "support/table.hpp"

namespace {

struct Options {
  std::string algo = "drr";
  std::string agg = "ave";
  std::uint32_t n = 4096;
  std::uint64_t seed = 42;
  double loss = 0.0;
  double crash = 0.0;
  double rank_threshold = 0.0;
  int trials = 1;
  unsigned threads = 1;
  unsigned intra_threads = 1;
  double diam_mult = 1.0;
  drrg::api::Pipeline pipeline = drrg::api::Pipeline::kDense;
  drrg::api::Transport transport = drrg::api::Transport::kSim;
  std::uint16_t bind_port = 0;
  std::string seed_list;
  std::string chaos_text;
  std::int64_t round_ms = 0;
  drrg::sim::TopologySpec topology{};
  std::vector<drrg::sim::CrashEvent> churn;
  std::vector<drrg::sim::JoinEvent> joins;
  std::vector<drrg::sim::BlockCrashEvent> blocks;
  std::vector<drrg::sim::PartitionEvent> partitions;
  drrg::sim::LatencyModel latency{};
  std::string churn_text;
  std::string join_text;
  std::string block_text;
  std::string partition_text;
  std::string latency_text;
  bool csv = false;
  bool json = false;
};

[[noreturn]] void usage(int code) {
  std::string algos, aggs;
  for (const auto* a : drrg::api::Registry::instance().algorithms()) {
    if (!algos.empty()) algos += ' ';
    algos += a->name;
  }
  for (drrg::api::Aggregate g : drrg::api::kAllAggregates) {
    if (!aggs.empty()) aggs += ' ';
    aggs += std::string{drrg::api::to_string(g)};
  }
  std::fprintf(stderr,
               "usage: drrg_cli [--algo A] [--agg G] [--n N] [--seed S]\n"
               "                [--loss D] [--crash F] [--churn R:F[,R:F...]]\n"
               "                [--join R:F[,...]] [--block-crash R:LO-HI[:S/W][,...]]\n"
               "                [--partition R:B[:H][,...]]\n"
               "                [--latency fixed:D|uniform:A-B|tail:A-B:P]\n"
               "                [--topology P] [--degree D] [--backend B] [--threshold X]\n"
               "                [--trials T] [--threads W] [--intra-threads I]\n"
               "                [--diam-mult M] [--pipeline dense|sparse]\n"
               "                [--transport sim|udp] [--bind-port P] [--seed-list L]\n"
               "                [--chaos SPEC] [--round-ms MS]\n"
               "                [--csv] [--json] [--list]\n"
               "  A: %s\n"
               "  G: %s\n"
               "  P: %s\n"
               "  --churn crashes fraction F of the then-alive nodes at round R\n"
               "  --join defers fraction F of the id space out of the round-0\n"
               "      cohort; they join (and bootstrap from a live peer) at round R\n"
               "  --block-crash kills every id in [LO,HI) at round R; an optional\n"
               "      :STRIDE/WIDTH keeps only lattice-rectangle offsets\n"
               "  --partition drops every message straddling id boundary B from\n"
               "      round R (optionally healing at round H)\n"
               "  --latency delays each call by d rounds drawn per message\n"
               "      (event-time delivery; replies stay same-round reliable)\n"
               "  --backend picks the structured-topology storage: csr materialises\n"
               "      adjacency, implicit computes neighbors from ids (chord-ring and\n"
               "      grid/torus only); auto (default) goes implicit at n >= 131072.\n"
               "      Both sample identically -- results are byte-equal either way\n"
               "  --threads 0 uses every hardware core; any value is bit-identical\n"
               "  --intra-threads fans a run's independent sub-runs (median bracket);\n"
               "      0 = all cores, bit-identical for any value\n"
               "  --diam-mult scales the DRR Phase III budget by M*diameter/log2(n)\n"
               "      on explicit topologies (1 = default; 0 disables the whole\n"
               "      topology adaptation incl. the tree-member relay)\n"
               "  --pipeline sparse runs the paper's sparse pipeline (Local-DRR +\n"
               "      routed root gossip) for --algo drr on an explicit --topology\n"
               "  --transport udp forks one drrg_node process per node and runs the\n"
               "      pipeline over real 127.0.0.1 UDP sockets (drr only);\n"
               "      --bind-port sets the first port (node v binds P + v, 0 probes\n"
               "      for a free range), --seed-list pins explicit host:port,...\n"
               "      addresses (position i = node i, loopback only)\n"
               "  --chaos injects deterministic datagram-level adversity into the\n"
               "      udp transport: comma-joined drop:P dup:P corrupt:P\n"
               "      reorder:P[/SPAN] delay:<latency-ms> cut:B@S[-H] tokens\n"
               "      (e.g. drop:0.1,dup:0.05,reorder:0.2/4,cut:24@500-4000)\n"
               "  --round-ms maps scheduled rounds onto the udp wall clock\n"
               "      (block-crash -> real SIGKILL, partition -> timed cut,\n"
               "      join -> late spawn, latency -> per-datagram delay);\n"
               "      defaults to 250 when such a schedule needs it\n",
               algos.c_str(), aggs.c_str(), drrg::api::topology_names().c_str());
  std::exit(code);
}

/// Prints the algorithm x aggregate matrix straight from the registry.
void list_matrix() {
  std::printf("%-14s %-42s %-8s %s\n", "algorithm", "aggregates", "transports",
              "description");
  std::printf("%-14s %-42s %-8s %s\n", "-------------",
              "-----------------------------------------", "--------", "-----------");
  for (const auto* a : drrg::api::Registry::instance().algorithms()) {
    std::string aggs;
    for (drrg::api::Aggregate g : a->aggregates) {
      if (!aggs.empty()) aggs += ' ';
      aggs += std::string{drrg::api::to_string(g)};
    }
    std::string transports;
    for (drrg::api::Transport t : a->transports) {
      if (!transports.empty()) transports += ' ';
      transports += std::string{drrg::api::to_string(t)};
    }
    std::printf("%-14s %-42s %-8s %s\n", a->name.c_str(), aggs.c_str(),
                transports.c_str(), a->description.c_str());
  }
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--algo") opt.algo = next("--algo");
    else if (arg == "--agg") opt.agg = next("--agg");
    else if (arg == "--n") opt.n = static_cast<std::uint32_t>(std::atoll(next("--n")));
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    else if (arg == "--loss") opt.loss = std::atof(next("--loss"));
    else if (arg == "--crash") opt.crash = std::atof(next("--crash"));
    else if (arg == "--threshold") opt.rank_threshold = std::atof(next("--threshold"));
    else if (arg == "--trials") opt.trials = std::atoi(next("--trials"));
    else if (arg == "--threads") opt.threads = static_cast<unsigned>(std::atoi(next("--threads")));
    else if (arg == "--intra-threads") opt.intra_threads = static_cast<unsigned>(std::atoi(next("--intra-threads")));
    else if (arg == "--diam-mult") opt.diam_mult = std::atof(next("--diam-mult"));
    else if (arg == "--pipeline") {
      const char* name = next("--pipeline");
      const auto pipeline = drrg::api::pipeline_from_name(name);
      if (!pipeline.has_value()) {
        std::fprintf(stderr, "unknown pipeline: %s (want dense or sparse)\n", name);
        usage(2);
      }
      opt.pipeline = *pipeline;
    }
    else if (arg == "--transport") {
      const char* name = next("--transport");
      const auto transport = drrg::api::transport_from_name(name);
      if (!transport.has_value()) {
        std::fprintf(stderr, "unknown transport: %s (want sim or udp)\n", name);
        usage(2);
      }
      opt.transport = *transport;
    }
    else if (arg == "--bind-port") opt.bind_port = static_cast<std::uint16_t>(std::atoi(next("--bind-port")));
    else if (arg == "--seed-list") opt.seed_list = next("--seed-list");
    else if (arg == "--chaos") {
      opt.chaos_text = next("--chaos");
      if (!drrg::api::parse_chaos(opt.chaos_text).has_value()) {
        std::fprintf(stderr,
                     "malformed chaos spec: %s (want drop:P,dup:P,corrupt:P,"
                     "reorder:P[/SPAN],delay:<latency>,cut:B@S[-H])\n",
                     opt.chaos_text.c_str());
        usage(2);
      }
    }
    else if (arg == "--round-ms") opt.round_ms = std::atoll(next("--round-ms"));
    else if (arg == "--degree") opt.topology.degree = static_cast<std::uint32_t>(std::atoi(next("--degree")));
    else if (arg == "--topology") {
      const char* name = next("--topology");
      const auto spec = drrg::sim::topology_from_name(name);
      if (!spec.has_value()) {
        std::fprintf(stderr, "unknown topology: %s\n", name);
        usage(2);
      }
      const auto degree = opt.topology.degree;
      const auto backend = opt.topology.backend;
      opt.topology = *spec;
      opt.topology.degree = degree;    // --degree may precede --topology
      opt.topology.backend = backend;  // so may --backend
    }
    else if (arg == "--backend") {
      const char* name = next("--backend");
      const auto backend = drrg::sim::backend_from_name(name);
      if (!backend.has_value()) {
        std::fprintf(stderr, "unknown backend: %s (want auto, csr or implicit)\n", name);
        usage(2);
      }
      opt.topology.backend = *backend;
    }
    else if (arg == "--churn") {
      opt.churn_text = next("--churn");
      const auto churn = drrg::api::parse_churn(opt.churn_text);
      if (!churn.has_value()) {
        std::fprintf(stderr, "malformed churn schedule: %s (want R:F[,R:F...])\n",
                     opt.churn_text.c_str());
        usage(2);
      }
      opt.churn = *churn;
    }
    else if (arg == "--join") {
      opt.join_text = next("--join");
      const auto joins = drrg::api::parse_joins(opt.join_text);
      if (!joins.has_value()) {
        std::fprintf(stderr, "malformed join schedule: %s (want R:F[,R:F...])\n",
                     opt.join_text.c_str());
        usage(2);
      }
      opt.joins = *joins;
    }
    else if (arg == "--block-crash") {
      opt.block_text = next("--block-crash");
      const auto blocks = drrg::api::parse_blocks(opt.block_text);
      if (!blocks.has_value()) {
        std::fprintf(stderr,
                     "malformed block-crash schedule: %s (want R:LO-HI[:S/W][,...])\n",
                     opt.block_text.c_str());
        usage(2);
      }
      opt.blocks = *blocks;
    }
    else if (arg == "--partition") {
      opt.partition_text = next("--partition");
      const auto partitions = drrg::api::parse_partitions(opt.partition_text);
      if (!partitions.has_value()) {
        std::fprintf(stderr, "malformed partition schedule: %s (want R:B[:H][,...])\n",
                     opt.partition_text.c_str());
        usage(2);
      }
      opt.partitions = *partitions;
    }
    else if (arg == "--latency") {
      opt.latency_text = next("--latency");
      const auto latency = drrg::api::parse_latency(opt.latency_text);
      if (!latency.has_value()) {
        std::fprintf(stderr,
                     "malformed latency model: %s (want fixed:D, uniform:A-B or "
                     "tail:A-B:P)\n",
                     opt.latency_text.c_str());
        usage(2);
      }
      opt.latency = *latency;
    }
    else if (arg == "--csv") opt.csv = true;
    else if (arg == "--json") opt.json = true;
    else if (arg == "--list") { list_matrix(); std::exit(0); }
    else if (arg == "--help" || arg == "-h") usage(0);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(2);
    }
  }
  if (opt.n < 4) {
    std::fprintf(stderr, "--n must be >= 4\n");
    usage(2);
  }
  if (opt.csv && opt.json) {
    std::fprintf(stderr, "--csv and --json are mutually exclusive\n");
    usage(2);
  }
  if (opt.trials < 1) opt.trials = 1;
  return opt;
}

/// Substrate facts beyond the family name: the resolved storage backend
/// and, for lattices, the rows x cols shape make_topology derived from n
/// (so a sweep's JSON records the actual aspect ratio, not just "grid").
std::string topology_extras_json(const Options& opt) {
  using drrg::sim::TopologyBackend;
  using drrg::sim::TopologyKind;
  const TopologyKind kind = opt.topology.kind;
  std::string out;
  if (kind == TopologyKind::kChordRing || kind == TopologyKind::kGrid2d) {
    // The sparse pipeline walks real adjacency, so the scenario layer
    // forces CSR there no matter what was requested.
    const bool implicit =
        opt.pipeline != drrg::api::Pipeline::kSparse &&
        (opt.topology.backend == TopologyBackend::kImplicit ||
         (opt.topology.backend == TopologyBackend::kAuto &&
          opt.n >= drrg::sim::kImplicitAutoThreshold));
    out += ",\"backend\":\"";
    out += implicit ? "implicit" : "csr";
    out += '"';
  }
  if (kind == TopologyKind::kGrid2d) {
    const drrg::sim::GridShape shape = drrg::sim::grid_shape(opt.n);
    out += ",\"grid_rows\":" + std::to_string(shape.rows) +
           ",\"grid_cols\":" + std::to_string(shape.cols);
  }
  return out;
}

void print_json(const Options& opt, const drrg::api::RunReport& r) {
  std::printf("{\"algo\":\"%s\",\"agg\":\"%s\",\"n\":%u,\"seed\":%llu,"
              "\"pipeline\":\"%s\",\"transport\":\"%s\","
              "\"topology\":\"%s\"%s,\"loss\":%.4f,\"crash\":%.4f,\"churn\":\"%s\","
              "\"join\":\"%s\",\"block_crash\":\"%s\",\"partition\":\"%s\","
              "\"latency\":\"%s\",\"chaos\":\"%s\","
              "\"value\":%.17g,\"truth\":%.17g,"
              "\"abs_error\":%.17g,\"rel_error\":%.17g,\"consensus\":%s,"
              "\"messages\":%llu,\"delivered\":%llu,\"bits\":%llu,\"rounds\":%u}\n",
              r.algorithm.c_str(), std::string{drrg::api::to_string(r.aggregate)}.c_str(),
              r.n, static_cast<unsigned long long>(r.seed),
              std::string{drrg::api::to_string(opt.pipeline)}.c_str(),
              std::string{drrg::api::to_string(opt.transport)}.c_str(),
              std::string{drrg::sim::to_string(opt.topology.kind)}.c_str(),
              topology_extras_json(opt).c_str(),
              opt.loss, opt.crash, opt.churn_text.c_str(),
              drrg::api::format_joins(opt.joins).c_str(),
              drrg::api::format_blocks(opt.blocks).c_str(),
              drrg::api::format_partitions(opt.partitions).c_str(),
              drrg::api::format_latency(opt.latency).c_str(), opt.chaos_text.c_str(),
              r.value, r.truth, r.abs_error(), r.rel_error(),
              r.consensus ? "true" : "false",
              static_cast<unsigned long long>(r.cost.sent),
              static_cast<unsigned long long>(r.cost.delivered),
              static_cast<unsigned long long>(r.cost.bits), r.rounds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace drrg;
  const Options opt = parse(argc, argv);

  const api::AlgorithmInfo* algo = api::Registry::instance().find(opt.algo);
  if (algo == nullptr) {
    std::fprintf(stderr, "unknown algorithm: %s\n", opt.algo.c_str());
    usage(2);
  }
  const auto agg = api::aggregate_from_name(opt.agg);
  if (!agg.has_value()) {
    std::fprintf(stderr, "unknown aggregate: %s\n", opt.agg.c_str());
    usage(2);
  }
  if (!algo->supports(*agg)) {
    std::fprintf(stderr, "'%s' does not support '%s' (see --list)\n",
                 opt.algo.c_str(), opt.agg.c_str());
    usage(2);
  }

  api::RunSpec spec;
  spec.n = opt.n;
  spec.aggregate = *agg;
  spec.seed = opt.seed;
  spec.faults.loss_prob = opt.loss;
  spec.faults.crash_fraction = opt.crash;
  spec.faults.churn = opt.churn;
  spec.faults.joins = opt.joins;
  spec.faults.blocks = opt.blocks;
  spec.faults.partitions = opt.partitions;
  spec.faults.latency = opt.latency;
  spec.topology = opt.topology;
  spec.pipeline = opt.pipeline;
  spec.transport = opt.transport;
  spec.udp_port_base = opt.bind_port;
  spec.udp_seed_list = opt.seed_list;
  spec.udp_chaos = opt.chaos_text;
  spec.udp_round_ms = opt.round_ms;
  if (opt.pipeline != api::Pipeline::kDense && opt.algo != "drr")
    std::fprintf(stderr, "--pipeline only applies to --algo drr (ignored)\n");
  if (opt.transport == api::Transport::kSim &&
      (opt.bind_port != 0 || !opt.seed_list.empty() || !opt.chaos_text.empty() ||
       opt.round_ms != 0))
    std::fprintf(stderr,
                 "--bind-port/--seed-list/--chaos/--round-ms only apply to "
                 "--transport udp (ignored)\n");
  spec.rank_threshold = opt.rank_threshold;
  spec.intra_threads = opt.intra_threads;
  if (opt.diam_mult != 1.0) {
    // Only the dense DRR pipeline reads the knob; leave the config variant
    // alone otherwise so other algorithms keep their defaults.  The sparse
    // pipeline has no diameter budget (its routed sampler already mixes
    // uniformly), and it takes a SparseGossipConfig -- silently storing a
    // DrrGossipConfig would fail every run with a config-type mismatch.
    if (opt.algo == "drr" && opt.pipeline == api::Pipeline::kDense) {
      DrrGossipConfig cfg;
      cfg.phase3_diameter_multiplier = opt.diam_mult;
      spec.config = cfg;
    } else {
      std::fprintf(stderr,
                   "--diam-mult only applies to --algo drr --pipeline dense (ignored)\n");
    }
  }

  if (opt.csv) {
    std::printf(
        "algo,agg,n,seed,topology,loss,crash,churn,value,truth,consensus,messages,rounds\n");
  } else if (!opt.json) {
    std::string extras;
    if (!opt.churn_text.empty()) extras += ", churn " + opt.churn_text;
    if (!opt.join_text.empty()) extras += ", join " + opt.join_text;
    if (!opt.block_text.empty()) extras += ", block-crash " + opt.block_text;
    if (!opt.partition_text.empty()) extras += ", partition " + opt.partition_text;
    if (!opt.latency.zero()) extras += ", latency " + api::format_latency(opt.latency);
    std::printf("%s%s%s / %s on n = %u, %s (loss %.3f, crash %.3f%s, %d trial%s, %u thread%s)\n",
                opt.algo.c_str(),
                opt.pipeline == api::Pipeline::kSparse ? " [sparse]" : "",
                opt.transport == api::Transport::kUdp ? " [udp]" : "",
                opt.agg.c_str(), opt.n,
                std::string{sim::to_string(opt.topology.kind)}.c_str(), opt.loss,
                opt.crash, extras.c_str(),
                opt.trials, opt.trials == 1 ? "" : "s",
                opt.threads, opt.threads == 1 ? "" : "s");
  }

  Table table{{"seed", "value", "truth", "consensus", "messages", "rounds",
               "msgs/n"}};
  bool all_ok = true;
  for (const api::RunReport& r : api::run_trials(opt.algo, spec, opt.trials, opt.threads)) {
    if (!r.ok()) {
      std::fprintf(stderr, "run failed (seed %llu): %s\n",
                   static_cast<unsigned long long>(r.seed), r.error.c_str());
      all_ok = false;
      continue;
    }
    if (opt.csv) {
      std::printf("%s,%s,%u,%llu,%s,%.4f,%.4f,%s,%.8g,%.8g,%d,%llu,%u\n",
                  r.algorithm.c_str(), opt.agg.c_str(), r.n,
                  static_cast<unsigned long long>(r.seed),
                  std::string{sim::to_string(opt.topology.kind)}.c_str(),
                  opt.loss, opt.crash, opt.churn_text.c_str(),
                  r.value, r.truth, r.consensus ? 1 : 0,
                  static_cast<unsigned long long>(r.cost.sent), r.rounds);
    } else if (opt.json) {
      print_json(opt, r);
    } else {
      table.row()
          .add_uint(r.seed)
          .add_real(r.value, 6)
          .add_real(r.truth, 6)
          .add(r.consensus ? "yes" : "no")
          .add_uint(r.cost.sent)
          .add_uint(r.rounds)
          .add_real(static_cast<double>(r.cost.sent) / opt.n, 2);
    }
  }
  if (!opt.csv && !opt.json) {
    std::string rendered = table.to_string();
    std::fputs(rendered.c_str(), stdout);
  }
  return all_ok ? 0 : 1;
}
