#!/usr/bin/env python3
"""Engine ops-counter golden check.

Compares the bench_table1 rows of a freshly generated BENCH_engine.json
against the committed goldens (tests/golden/bench_table1_ops.json).  The
simulator is deterministic, so the per-(algo, n, topology) ops counters --
rounds and messages -- must match *exactly*; any drift means an engine or
protocol change altered simulated behavior, which a perf PR must not do.
Wall-clock fields are ignored (they are the point of the file, not a
contract).

Usage: tools/check_bench_goldens.py BENCH_engine.json tests/golden/bench_table1_ops.json
Exit 0 on match, 1 on drift or missing rows.
"""

import json
import sys


def table1_rows(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != "table1":
                continue
            key = (row["algo"], row["n"], row.get("topology", "complete"),
                   row.get("churn", ""))
            rows[key] = (row["rounds"], row["msgs"])
    return rows


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    fresh = table1_rows(sys.argv[1])
    golden = table1_rows(sys.argv[2])
    if not golden:
        print(f"check_bench_goldens: no table1 rows in golden {sys.argv[2]}",
              file=sys.stderr)
        return 1
    failures = 0
    for key, want in sorted(golden.items()):
        got = fresh.get(key)
        if got is None:
            print(f"MISSING  {key}: golden rounds={want[0]} msgs={want[1]}, "
                  "no fresh row")
            failures += 1
        elif got != want:
            print(f"DRIFT    {key}: rounds {want[0]} -> {got[0]}, "
                  f"msgs {want[1]} -> {got[1]}")
            failures += 1
    checked = len(golden)
    if failures:
        print(f"check_bench_goldens: {failures}/{checked} rows drifted")
        return 1
    print(f"check_bench_goldens: all {checked} ops rows match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
