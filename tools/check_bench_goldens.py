#!/usr/bin/env python3
"""Engine behavior golden check.

Compares a freshly generated BENCH_engine.json against the committed
goldens (tests/golden/bench_table1_ops.json) on two axes:

  * table1 rows: the simulator is deterministic, so the per-(algo, n,
    topology) ops counters -- rounds and messages -- must match
    *exactly*; any drift means an engine or protocol change altered
    simulated behavior, which a perf PR must not do.
  * engine_sweep rows: the full-report CSV sha256 per (topology, algo,
    n, trials) must match, and the threads-1-vs-threads-4 determinism
    bit must stay true.  This is the byte-identity pin for the whole
    dense + sparse pipeline output, guarding e.g. transport refactors.
  * engine_micro allocs_per_run, routed cases only (BM_EngineChordDrr,
    BM_EngineDrrSparseGrid): the flattened routed hot path holds heap
    traffic O(1) in n, so a fresh count more than 10% above the golden
    is a hard failure, as is regained O(n) growth (the n=16384 count
    exceeding twice the n=1024 count).
  * n_sweep rows (single-run scaling family): per (algo, topology, n),
    msgs/(n log2 n) must stay within 20% of the golden ratio -- that
    ratio *is* the paper's O(n log n) message claim, so a drift past
    tolerance means the message complexity moved -- and peak RSS must
    stay under 1.25x the golden footprint, which is what catches an
    accidental O(n log n) adjacency materialisation at scale.  Rows
    for sizes the fresh run skipped (SMOKE, low memory) are ignored.

Wall-clock fields are ignored (they are the point of the file, not a
contract); throughput counters likewise -- only allocation counts are
deterministic enough to gate.

Usage: tools/check_bench_goldens.py BENCH_engine.json tests/golden/bench_table1_ops.json
Exit 0 on match, 1 on drift or missing rows.
"""

import json
import sys


# Micro cases whose allocation count is a gated contract: the routed hot
# path (chord-drr on the overlay, drr through the sparse grid pipeline).
ROUTED_CASES = ("BM_EngineChordDrr", "BM_EngineDrrSparseGrid")


def golden_rows(path):
    table1, sweeps, micro_allocs, nsweep = {}, {}, {}, {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") == "table1":
                key = (row["algo"], row["n"], row.get("topology", "complete"),
                       row.get("churn", ""), row.get("scenario", ""))
                table1[key] = (row["rounds"], row["msgs"])
            elif row.get("bench") == "engine_sweep":
                key = (row.get("topology", "complete"), row["algo"],
                       row["n"], row["trials"])
                sweeps[key] = (row["sha256"], row.get("deterministic", False))
            elif row.get("bench") == "engine_micro":
                micro_allocs[row["case"]] = row.get("allocs_per_run")
            elif row.get("bench") == "n_sweep":
                key = (row["algo"], row.get("topology", "complete"), row["n"])
                nsweep[key] = (row["msgs_per_nlog"], row.get("peak_rss_mib"))
    return table1, sweeps, micro_allocs, nsweep


def check_nsweep(fresh, golden):
    """Scaling-family gates; returns (failure count, rows checked)."""
    failures = 0
    checked = 0
    for key, (want_ratio, want_rss) in sorted(golden.items()):
        got = fresh.get(key)
        if got is None:
            continue  # skipped size (SMOKE matrix / low-memory machine)
        checked += 1
        got_ratio, got_rss = got
        if want_ratio > 0 and abs(got_ratio - want_ratio) > 0.20 * want_ratio:
            print(f"NSWEEP-MSG-DRIFT {key}: msgs/(n log n) "
                  f"{want_ratio} -> {got_ratio} (>20% drift)")
            failures += 1
        if (want_rss is not None and got_rss is not None and want_rss > 0
                and got_rss > want_rss * 1.25):
            print(f"NSWEEP-RSS-REGRESSION {key}: peak_rss_mib "
                  f"{want_rss} -> {got_rss} (>1.25x golden)")
            failures += 1
    return failures, checked


def check_allocs(fresh, golden):
    """Routed allocs_per_run gate; returns the failure count."""
    failures = 0
    checked = 0
    for case, want in sorted(golden.items()):
        if not case.startswith(ROUTED_CASES) or want is None:
            continue
        got = fresh.get(case)
        if got is None:
            continue
        checked += 1
        # 10% relative headroom plus a small absolute floor so tiny counts
        # (a few hundred) don't flake on a single incidental allocation.
        if got > want * 1.10 + 8:
            print(f"ALLOC-DRIFT {case}: allocs_per_run {want} -> {got} "
                  "(>10% regression)")
            failures += 1
    for prefix in ROUTED_CASES:
        small = fresh.get(f"{prefix}/1024")
        big = fresh.get(f"{prefix}/16384")
        if small is not None and big is not None and big > 2 * small + 128:
            print(f"ALLOC-GROWTH {prefix}: allocs_per_run grows with n "
                  f"(1024: {small}, 16384: {big}) -- O(1) contract broken")
            failures += 1
    return failures, checked


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    fresh_t1, fresh_sw, fresh_al, fresh_ns = golden_rows(sys.argv[1])
    golden_t1, golden_sw, golden_al, golden_ns = golden_rows(sys.argv[2])
    if not golden_t1:
        print(f"check_bench_goldens: no table1 rows in golden {sys.argv[2]}",
              file=sys.stderr)
        return 1
    failures = 0
    for key, want in sorted(golden_t1.items()):
        got = fresh_t1.get(key)
        if got is None:
            print(f"MISSING  {key}: golden rounds={want[0]} msgs={want[1]}, "
                  "no fresh row")
            failures += 1
        elif got != want:
            print(f"DRIFT    {key}: rounds {want[0]} -> {got[0]}, "
                  f"msgs {want[1]} -> {got[1]}")
            failures += 1
    # Sweep hashes: only keys present in both are comparable (the full
    # baseline and the SMOKE matrix run different n/trials), but every
    # golden sweep key the fresh run *does* cover must hash identically.
    sweeps_checked = 0
    for key, (want_sha, _) in sorted(golden_sw.items()):
        got = fresh_sw.get(key)
        if got is None:
            continue
        sweeps_checked += 1
        got_sha, got_det = got
        if got_sha != want_sha:
            print(f"SWEEP-DRIFT {key}: sha256 {want_sha[:12]}... -> "
                  f"{got_sha[:12]}...")
            failures += 1
        if not got_det:
            print(f"NONDETERMINISTIC {key}: threads-1 vs threads-4 reports "
                  "differ")
            failures += 1
    if golden_sw and not sweeps_checked:
        print("check_bench_goldens: no fresh engine_sweep row matches any "
              "golden sweep key", file=sys.stderr)
        failures += 1
    alloc_failures, allocs_checked = check_allocs(fresh_al, golden_al)
    failures += alloc_failures
    nsweep_failures, nsweep_checked = check_nsweep(fresh_ns, golden_ns)
    failures += nsweep_failures
    if golden_ns and not nsweep_checked:
        print("check_bench_goldens: no fresh n_sweep row matches any golden "
              "n_sweep key", file=sys.stderr)
        failures += 1
    checked = len(golden_t1)
    if failures:
        print(f"check_bench_goldens: {failures} failures "
              f"({checked} ops rows, {sweeps_checked} sweep hashes, "
              f"{allocs_checked} alloc gates, {nsweep_checked} n-sweep rows "
              "checked)")
        return 1
    print(f"check_bench_goldens: all {checked} ops rows, "
          f"{sweeps_checked} sweep hashes, {allocs_checked} alloc gates "
          f"and {nsweep_checked} n-sweep rows match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
