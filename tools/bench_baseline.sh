#!/usr/bin/env bash
# bench_baseline.sh -- the pinned engine-performance baseline.
#
# Runs three things against a Release build and folds every row into one
# machine-readable JSON-lines file (default BENCH_engine.json), the perf
# trajectory future PRs diff against:
#
#   1. the pinned CLI sweep (drr/ave, n = 4096, 64 trials, complete + grid,
#      --threads = hardware cores; grid pinned at --diam-mult 0 so the
#      logical work is identical across PRs regardless of the default
#      Phase III budget), timed as min-of-3 wall clock, with a
#      threads-1-vs-threads-4 output hash proving bit-identical reports,
#      plus the sparse-pipeline sweep point (chord-drr/ave on the engine
#      port) under the same timing + hash discipline;
#   2. the n-sweep scaling family (single runs at n = 65536 ... 16M,
#      dense push-sum + implicit chord-ring DRR) with wall clock, peak
#      RSS and the msgs/(n log n), rounds/log n scaling ratios;
#   3. bench_table1 --table1_json on the pinned config matrix
#      (n in {256, 1024, 4096}, complete + grid) -- the ops counters
#      (rounds/msgs) the CI golden check pins;
#   4. bench_engine micro-benchmarks (rounds/sec, msgs/sec, allocs/run).
#
# Usage:
#   tools/bench_baseline.sh [BUILD_DIR] [OUT_JSON]
#   PRE_CLI=path/to/old/drrg_cli tools/bench_baseline.sh   # adds speedup rows
#   SMOKE=1 tools/bench_baseline.sh                        # CI-sized matrix
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_engine.json}"
CLI="$BUILD_DIR/drrg_cli"
TABLE1="$BUILD_DIR/bench_table1"
ENGINE="$BUILD_DIR/bench_engine"
THREADS="$(nproc 2>/dev/null || echo 1)"

if [ ! -x "$CLI" ]; then
  echo "bench_baseline: $CLI not found (build first: cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

# The table1 matrix is always complete (its ops counters are the CI golden
# contract); SMOKE only shrinks the timed sweep.
T1_FILTER='/(256|1024|4096)/'
if [ "${SMOKE:-0}" = "1" ]; then
  SWEEP_N=1024; SWEEP_TRIALS=8; REPS=1
else
  SWEEP_N=4096; SWEEP_TRIALS=64; REPS=5
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
: > "$TMP/rows.json"

# --- 1. pinned CLI sweeps ---------------------------------------------------
# One timing + hash discipline for every sweep point: min-of-REPS wall
# clock, and a threads-1-vs-threads-4 CSV sha256 proving bit-identical
# reports.  Args: row label, algo, n, trials, extra CLI flags.
run_sweep() {
  local LABEL="$1"; shift
  local ALGO="$1"; shift
  local N="$1"; shift
  local TRIALS="$1"; shift
  local BEST=""
  for _ in $(seq "$REPS"); do
    local S E D
    S=$(date +%s.%N)
    "$CLI" --algo "$ALGO" --agg ave --n "$N" --trials "$TRIALS" \
           --threads "$THREADS" "$@" --csv > "$TMP/sweep.csv"
    E=$(date +%s.%N)
    D=$(python3 -c "print(f'{$E - $S:.4f}')")
    if [ -z "$BEST" ] || python3 -c "exit(0 if $D < $BEST else 1)"; then BEST="$D"; fi
  done
  local H1 H4 DET=false
  H1=$("$CLI" --algo "$ALGO" --agg ave --n "$N" --trials "$TRIALS" \
       --threads 1 "$@" --csv | sha256sum | cut -d' ' -f1)
  H4=$("$CLI" --algo "$ALGO" --agg ave --n "$N" --trials "$TRIALS" \
       --threads 4 "$@" --csv | sha256sum | cut -d' ' -f1)
  [ "$H1" = "$H4" ] && DET=true
  local ROW="{\"bench\":\"engine_sweep\",\"topology\":\"$LABEL\",\"algo\":\"$ALGO\",\"n\":$N,\"trials\":$TRIALS,\"threads\":$THREADS,\"wall_s\":$BEST,\"deterministic\":$DET,\"sha256\":\"$H1\""
  if [ "$ALGO" = drr ] && [ -n "${PRE_CLI:-}" ] && [ -x "${PRE_CLI}" ]; then
    # The pre-PR binary has no --diam-mult flag; it also has no diameter
    # scaling, so plain flags run the identical logical workload.  (drr
    # only: the pre binary's chord-drr still ran on RoutedTransport.)
    local PBEST=""
    local TOPO_FLAGS=()
    [ "$LABEL" != complete ] && TOPO_FLAGS=(--topology "$LABEL")
    for _ in $(seq "$REPS"); do
      local S E D
      S=$(date +%s.%N)
      "$PRE_CLI" --algo drr --agg ave --n "$N" --trials "$TRIALS" \
                 --threads "$THREADS" "${TOPO_FLAGS[@]}" --csv > /dev/null
      E=$(date +%s.%N)
      D=$(python3 -c "print(f'{$E - $S:.4f}')")
      if [ -z "$PBEST" ] || python3 -c "exit(0 if $D < $PBEST else 1)"; then PBEST="$D"; fi
    done
    local SPEEDUP
    SPEEDUP=$(python3 -c "print(f'{$PBEST / $BEST:.2f}')")
    ROW="$ROW,\"wall_s_pre\":$PBEST,\"speedup\":$SPEEDUP"
  fi
  echo "$ROW}" >> "$TMP/rows.json"
}

run_sweep complete drr "$SWEEP_N" "$SWEEP_TRIALS"
run_sweep grid drr "$SWEEP_N" "$SWEEP_TRIALS" --topology grid --diam-mult 0
# The sparse-pipeline sweep point: chord-drr/ave on the engine port.
run_sweep chord-overlay chord-drr "$SWEEP_N" "$SWEEP_TRIALS"
# Large-n routed sweep point (flattened hot path trajectory); full
# baseline only -- the CI smoke matrix stays small.
if [ "${SMOKE:-0}" != "1" ]; then
  run_sweep chord-overlay chord-drr 16384 "$SWEEP_TRIALS"
fi

# --- 1b. n-sweep family: single-run scaling rows ----------------------------
# One trial per n, implicit backend forced on the structured substrate, so
# the rows pin the scaling claims themselves: msgs/(n log2 n) and
# rounds/log2 n stay flat as n grows, and peak RSS stays in the implicit
# envelope (a materialised CSR at 16M would add gigabytes).  SMOKE runs
# 65536 only; the full baseline climbs 65536 -> 1M -> 4M -> 16M, skipping
# any n the machine lacks memory for (~350 bytes/node budgeted) or that
# exceeds NSWEEP_MAX.
run_nsweep_point() {
  local ALGO="$1" TOPO_LABEL="$2" N="$3"; shift 3
  python3 - "$CLI" "$ALGO" "$TOPO_LABEL" "$N" "$@" >> "$TMP/rows.json" <<'PY'
import json, math, resource, subprocess, sys, time
cli, algo, topo_label, n = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
args = [cli, "--algo", algo, "--agg", "ave", "--n", str(n), "--seed", "1",
        "--json"] + sys.argv[5:]
t0 = time.monotonic()
out = subprocess.run(args, capture_output=True, text=True, check=True).stdout
wall = time.monotonic() - t0
# ru_maxrss of the child CLI process (KiB on Linux); this python process
# runs exactly one child, so RUSAGE_CHILDREN is that run's peak.
rss_mib = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0
r = json.loads(out)
logn = math.log2(n)
row = {"bench": "n_sweep", "algo": algo, "topology": topo_label,
       "backend": r.get("backend", "none"), "n": n,
       "wall_s": round(wall, 4), "peak_rss_mib": round(rss_mib, 1),
       "msgs": r["messages"], "rounds": r["rounds"],
       "msgs_per_nlog": round(r["messages"] / (n * logn), 4),
       "rounds_per_log": round(r["rounds"] / logn, 4)}
print(json.dumps(row, separators=(",", ":")))
PY
}

if [ "${SMOKE:-0}" = "1" ]; then
  NSWEEP_SIZES="65536"
else
  NSWEEP_SIZES="65536 1048576 4194304 16777216"
fi
NSWEEP_MAX="${NSWEEP_MAX:-16777216}"
MEM_AVAIL_KIB=$(awk '/MemAvailable/ {print $2}' /proc/meminfo 2>/dev/null || echo 0)
for N in $NSWEEP_SIZES; do
  if [ "$N" -gt "$NSWEEP_MAX" ]; then
    echo "bench_baseline: n_sweep skipping n=$N (NSWEEP_MAX=$NSWEEP_MAX)" >&2
    continue
  fi
  if [ "$MEM_AVAIL_KIB" != 0 ] && [ $((N * 350 / 1024)) -gt "$MEM_AVAIL_KIB" ]; then
    echo "bench_baseline: n_sweep skipping n=$N (MemAvailable too low)" >&2
    continue
  fi
  run_nsweep_point uniform complete "$N"
  run_nsweep_point drr chord-ring "$N" --topology chord-ring --backend implicit
done

# --- 2. bench_table1 pinned matrix (ops counters for the CI goldens) --------
if [ -x "$TABLE1" ]; then
  for TOPO in complete grid; do
    "$TABLE1" --table1_topology="$TOPO" --table1_json="$TMP/t1.json" \
              --benchmark_filter="$T1_FILTER" > /dev/null 2>&1
    sed "s/\"topology\":\"[a-z-]*\"/\"topology\":\"$TOPO\"/" "$TMP/t1.json" >> "$TMP/rows.json"
  done
  # Structured-adversity ops rows: one pinned preset per event family
  # (drr/ave, n = 1024, complete substrate) -- the simulator is
  # deterministic under every preset, so these counters are golden too.
  for SCEN in latency block partition join; do
    "$TABLE1" --table1_scenario="$SCEN" --table1_json="$TMP/t1.json" \
              --benchmark_filter='BM_DrrGossipAve/1024/' > /dev/null 2>&1
    cat "$TMP/t1.json" >> "$TMP/rows.json"
  done
fi

# --- 3. bench_engine micro-benchmarks ---------------------------------------
if [ -x "$ENGINE" ]; then
  "$ENGINE" --benchmark_format=json > "$TMP/engine.json" 2>/dev/null
  python3 - "$TMP/engine.json" >> "$TMP/rows.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
for b in doc.get("benchmarks", []):
    name = b.get("name", "")
    row = {
        "bench": "engine_micro",
        "case": name,
        "rounds_per_sec": round(b.get("rounds_per_sec", 0.0), 1),
        "msgs_per_sec": round(b.get("msgs_per_sec", 0.0), 1),
        "allocs_per_run": b.get("allocs_per_run", 0.0),
    }
    print(json.dumps(row))
PY
fi

# --- 4. join allocs_per_run into the engine_sweep rows ----------------------
# The sweep rows time the CLI (which cannot count its own allocations);
# bench_engine measures allocs_per_run for the same (topology, algo)
# workloads.  Joining the micro counter onto the matching sweep row keys
# the allocation trajectory by the same (topology, algo, n) the wall-clock
# trajectory uses.
python3 - "$TMP/rows.json" > "$TMP/joined.json" <<'PY'
import json, sys
rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
CASE_OF = {("complete", "drr"): "BM_EngineDrrComplete",
           ("grid", "drr"): "BM_EngineDrrGrid",
           ("chord-overlay", "chord-drr"): "BM_EngineChordDrr"}
allocs = {r["case"]: r["allocs_per_run"] for r in rows
          if r.get("bench") == "engine_micro"}
for r in rows:
    if r.get("bench") == "engine_sweep":
        case = CASE_OF.get((r.get("topology"), r.get("algo")))
        if case is not None and f"{case}/{r['n']}" in allocs:
            r["allocs_per_run"] = allocs[f"{case}/{r['n']}"]
    print(json.dumps(r, separators=(",", ":")))
PY

mv "$TMP/joined.json" "$OUT"
echo "bench_baseline: wrote $(wc -l < "$OUT") rows to $OUT"
