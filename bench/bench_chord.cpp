// Experiment E14 -- Theorem 14 / §4 on Chord:
//
//   DRR-gossip (Local-DRR + routed root gossip): O(log^2 n) time and
//   O(n log n) messages whp.
//   Uniform gossip routed over the same overlay: O(log^2 n) time and
//   O(n log^2 n) messages.
//
// Columns: rounds_per_log2sq (flat => O(log^2 n)); msgs_per_nlog (flat
// for DRR-gossip), msgs_per_nlogsq (flat for uniform gossip); and the
// headline message ratio uniform/DRR, which must GROW ~ log n.

#include <benchmark/benchmark.h>

#include "aggregate/sparse.hpp"
#include "baselines/chord_uniform.hpp"
#include "bench_common.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 3;

void BM_ChordDrrGossipMax(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat rounds, msgs;
  int ok = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      ChordOverlay chord{n, seed};
      const Graph links = overlay_graph(chord);
      const auto values = bench::make_values(n, seed);
      const auto r = sparse_drr_gossip_max(chord, links, values, seed);
      rounds.add(r.rounds_total);
      msgs.add(static_cast<double>(r.metrics.total().sent));
      ok += r.consensus ? 1 : 0;
    }
  }
  const double lg = log2_clamped(n);
  state.counters["rounds"] = rounds.mean();
  state.counters["rounds_per_log2sq"] = rounds.mean() / (lg * lg);
  state.counters["msgs"] = msgs.mean();
  state.counters["msgs_per_nlog"] = msgs.mean() / (n * lg);
  state.counters["msgs_per_nlogsq"] = msgs.mean() / (n * lg * lg);
  state.counters["consensus_rate"] = static_cast<double>(ok) / kTrials;
}
BENCHMARK(BM_ChordDrrGossipMax)->RangeMultiplier(2)->Range(1 << 9, 1 << 13)->Iterations(1);

void BM_ChordUniformGossipMax(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat rounds, msgs;
  int ok = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      ChordOverlay chord{n, seed};
      const auto values = bench::make_values(n, seed);
      const auto r = chord_uniform_push_max(chord, values, seed);
      rounds.add(r.rounds);
      msgs.add(static_cast<double>(r.counters.sent));
      ok += r.consensus ? 1 : 0;
    }
  }
  const double lg = log2_clamped(n);
  state.counters["rounds"] = rounds.mean();
  state.counters["rounds_per_log2sq"] = rounds.mean() / (lg * lg);
  state.counters["msgs"] = msgs.mean();
  state.counters["msgs_per_nlog"] = msgs.mean() / (n * lg);
  state.counters["msgs_per_nlogsq"] = msgs.mean() / (n * lg * lg);
  state.counters["consensus_rate"] = static_cast<double>(ok) / kTrials;
}
BENCHMARK(BM_ChordUniformGossipMax)->RangeMultiplier(2)->Range(1 << 9, 1 << 13)->Iterations(1);

// Head-to-head ratio at each size: uniform messages / DRR messages should
// grow with log n (the §4 headline).
void BM_ChordMessageRatio(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double drr_msgs = 0, uni_msgs = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      ChordOverlay chord{n, seed};
      const Graph links = overlay_graph(chord);
      const auto values = bench::make_values(n, seed);
      drr_msgs += static_cast<double>(
          sparse_drr_gossip_max(chord, links, values, seed).metrics.total().sent);
      uni_msgs +=
          static_cast<double>(chord_uniform_push_max(chord, values, seed).counters.sent);
    }
  }
  state.counters["uniform_over_drr"] = uni_msgs / drr_msgs;
  state.counters["log2_n"] = log2_clamped(n);
}
BENCHMARK(BM_ChordMessageRatio)->RangeMultiplier(4)->Range(1 << 9, 1 << 13)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
