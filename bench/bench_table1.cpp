// Experiment T1 -- Table 1 of the paper:
//
//   algorithm            time            messages          address-obl.?
//   efficient gossip [8] O(log n loglog) O(n log log n)    no
//   uniform gossip  [9]  O(log n)        O(n log n)        yes
//   DRR-gossip (paper)   O(log n)        O(n log log n)    no
//
// Each case computes the global Average with one of the algorithms --
// invoked uniformly through the drrg::api facade -- and reports measured
// rounds and messages, plus the normalised columns that make the
// asymptotic class visible:
//   rounds_per_log      = rounds / log2 n         (flat => O(log n))
//   rounds_per_loglog2  = rounds / (log2 n loglog2 n)
//   msgs_per_nlog       = msgs / (n log2 n)       (flat => O(n log n))
//   msgs_per_nloglog    = msgs / (n loglog2 n)    (flat => O(n log log n))
//
// Scenario knobs (stripped before google-benchmark sees the arg list):
//   --table1_topology=NAME   complete | chord-ring | random-regular | grid
//   --table1_churn=R:F[,..]  crash F of the then-alive nodes at round R
//   --table1_scenario=NAME   structured-adversity preset, scaled to each n:
//                            latency   uniform 0-2 round call delays
//                            block     rack crash [n/8, n/4) at round 10
//                            partition boundary n/2 cut rounds 5..15
//                            join      10% of the id space joins at round 8
//   --table1_threads=W       parallel trial executor width (bit-identical)
//   --table1_json=PATH       machine-readable rows for perf tracking:
//                            one JSON object per line, so future PRs can
//                            diff rounds/msgs per (algorithm, n, scenario).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/scenario_text.hpp"
#include "bench_common.hpp"
#include "support/mathutil.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 3;

struct Table1Options {
  sim::TopologySpec topology{};
  std::vector<sim::CrashEvent> churn;
  std::string churn_text;
  std::string scenario;
  unsigned threads = 1;
  std::string json_path;
};

Table1Options& options() {
  static Table1Options opt;
  return opt;
}

/// Builds the named structured-adversity preset, scaled to the run's n so
/// one flag covers the whole size range (block/partition events name
/// absolute ids).  "" leaves the schedule fault-free.
bool apply_scenario(std::string_view name, std::uint32_t n, sim::FaultSchedule* faults) {
  if (name.empty()) return true;
  if (name == "latency") {
    faults->latency = {sim::LatencyModel::Kind::kUniform, 0, 2, 0.0};
    return true;
  }
  if (name == "block") {
    faults->blocks = {{10, n / 8, n / 4, 0, 0}};
    return true;
  }
  if (name == "partition") {
    faults->partitions = {{5, 15, n / 2}};
    return true;
  }
  if (name == "join") {
    faults->joins = {{8, 0.10}};
    return true;
  }
  return false;
}

struct JsonRow {
  std::string algorithm;
  std::uint32_t n = 0;
  double rounds = 0.0;
  double msgs = 0.0;
  double rel_error = 0.0;
};

std::vector<JsonRow>& json_rows() {
  static std::vector<JsonRow> rows;
  return rows;
}

void write_json() {
  if (options().json_path.empty()) return;
  std::FILE* f = std::fopen(options().json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_table1: cannot write %s\n",
                 options().json_path.c_str());
    return;
  }
  for (const JsonRow& row : json_rows()) {
    std::fprintf(
        f,
        "{\"bench\":\"table1\",\"algo\":\"%s\",\"agg\":\"ave\",\"n\":%u,"
        "\"topology\":\"%s\",\"churn\":\"%s\",\"scenario\":\"%s\",\"trials\":%d,"
        "\"rounds\":%.17g,\"msgs\":%.17g,\"rel_error\":%.17g,"
        "\"rounds_per_log\":%.17g,\"msgs_per_nlog\":%.17g,"
        "\"msgs_per_nloglog\":%.17g}\n",
        row.algorithm.c_str(), row.n,
        std::string{sim::to_string(options().topology.kind)}.c_str(),
        options().churn_text.c_str(), options().scenario.c_str(), kTrials,
        row.rounds, row.msgs, row.rel_error,
        row.rounds / log2_clamped(row.n), row.msgs / (row.n * log2_clamped(row.n)),
        row.msgs / (row.n * loglog2_clamped(row.n)));
  }
  std::fclose(f);
}

void set_columns(benchmark::State& state, std::uint32_t n, double rounds, double msgs) {
  state.counters["rounds"] = rounds;
  state.counters["msgs"] = msgs;
  state.counters["rounds_per_log"] = rounds / log2_clamped(n);
  state.counters["rounds_per_loglog2"] = rounds / (log2_clamped(n) * loglog2_clamped(n));
  state.counters["msgs_per_n"] = msgs / n;
  state.counters["msgs_per_nlog"] = msgs / (n * log2_clamped(n));
  state.counters["msgs_per_nloglog"] = msgs / (n * loglog2_clamped(n));
}

/// One Table 1 row: `kTrials` facade runs of (algorithm, Ave) at size n on
/// the selected scenario, executed on the deterministic thread pool.
void run_ave_case(benchmark::State& state, const std::string& algorithm) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double rounds = 0, msgs = 0, rel_error = 0;
  for (auto _ : state) {
    api::RunSpec spec;
    spec.n = n;
    spec.aggregate = api::Aggregate::kAve;
    spec.seed = 1000;
    spec.topology = options().topology;
    spec.faults.churn = options().churn;
    apply_scenario(options().scenario, n, &spec.faults);
    for (const api::RunReport& r :
         api::run_trials(algorithm, spec, kTrials, options().threads)) {
      rounds += r.rounds;
      msgs += static_cast<double>(r.cost.sent);
      rel_error += r.rel_error();
    }
  }
  set_columns(state, n, rounds / kTrials, msgs / kTrials);
  state.counters["rel_error"] = rel_error / kTrials;
  json_rows().push_back(
      {algorithm, n, rounds / kTrials, msgs / kTrials, rel_error / kTrials});
}

void BM_UniformGossipAve(benchmark::State& state) { run_ave_case(state, "uniform"); }
BENCHMARK(BM_UniformGossipAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

void BM_EfficientGossipAve(benchmark::State& state) { run_ave_case(state, "efficient"); }
BENCHMARK(BM_EfficientGossipAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

// Supplementary row: pairwise averaging (Boyd et al. [1]) -- the second
// address-oblivious Average baseline; also Theta(n log n) messages.
void BM_PairwiseAve(benchmark::State& state) { run_ave_case(state, "pairwise"); }
BENCHMARK(BM_PairwiseAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

void BM_DrrGossipAve(benchmark::State& state) { run_ave_case(state, "drr"); }
BENCHMARK(BM_DrrGossipAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

// §4 row: the sparse pipeline on the Chord overlay (Theorem 14) -- its
// ops counters joined the CI goldens when Phase III moved onto the shared
// engine.  The family fixes its own substrate, so the row only exists on
// the complete --table1_topology (no json row is emitted otherwise).
void BM_ChordDrrAve(benchmark::State& state) {
  if (!options().topology.is_complete()) {
    state.SkipWithError("chord-drr fixes its own overlay; --table1_topology n/a");
    return;
  }
  run_ave_case(state, "chord-drr");
}
BENCHMARK(BM_ChordDrrAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

/// Strips --table1_* flags (ours) from argv before google-benchmark's own
/// flag parsing rejects them.
int parse_own_flags(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [arg](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value_of("--table1_topology=")) {
      const auto spec = sim::topology_from_name(v);
      if (!spec.has_value()) {
        std::fprintf(stderr, "bench_table1: unknown topology '%s' (%s)\n", v,
                     api::topology_names().c_str());
        std::exit(2);
      }
      options().topology = *spec;
    } else if (const char* v = value_of("--table1_churn=")) {
      const auto churn = api::parse_churn(v);
      if (!churn.has_value()) {
        std::fprintf(stderr, "bench_table1: malformed churn '%s'\n", v);
        std::exit(2);
      }
      options().churn = *churn;
      options().churn_text = v;
    } else if (const char* v = value_of("--table1_scenario=")) {
      sim::FaultSchedule probe;
      if (!apply_scenario(v, 256, &probe)) {
        std::fprintf(stderr,
                     "bench_table1: unknown scenario '%s' (want latency, block, "
                     "partition or join)\n",
                     v);
        std::exit(2);
      }
      options().scenario = v;
    } else if (const char* v = value_of("--table1_threads=")) {
      options().threads = static_cast<unsigned>(std::atoi(v));
    } else if (const char* v = value_of("--table1_json=")) {
      options().json_path = v;
    } else {
      argv[kept++] = argv[i];
    }
  }
  return kept;
}

}  // namespace
}  // namespace drrg

int main(int argc, char** argv) {
  argc = drrg::parse_own_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  drrg::write_json();
  return 0;
}
