// Experiment T1 -- Table 1 of the paper:
//
//   algorithm            time            messages          address-obl.?
//   efficient gossip [8] O(log n loglog) O(n log log n)    no
//   uniform gossip  [9]  O(log n)        O(n log n)        yes
//   DRR-gossip (paper)   O(log n)        O(n log log n)    no
//
// Each case computes the global Average with one of the algorithms --
// invoked uniformly through the drrg::api facade -- and reports measured
// rounds and messages, plus the normalised columns that make the
// asymptotic class visible:
//   rounds_per_log      = rounds / log2 n         (flat => O(log n))
//   rounds_per_loglog2  = rounds / (log2 n loglog2 n)
//   msgs_per_nlog       = msgs / (n log2 n)       (flat => O(n log n))
//   msgs_per_nloglog    = msgs / (n loglog2 n)    (flat => O(n log log n))

#include <benchmark/benchmark.h>

#include <string>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "support/mathutil.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 3;

void set_columns(benchmark::State& state, std::uint32_t n, double rounds, double msgs) {
  state.counters["rounds"] = rounds;
  state.counters["msgs"] = msgs;
  state.counters["rounds_per_log"] = rounds / log2_clamped(n);
  state.counters["rounds_per_loglog2"] = rounds / (log2_clamped(n) * loglog2_clamped(n));
  state.counters["msgs_per_n"] = msgs / n;
  state.counters["msgs_per_nlog"] = msgs / (n * log2_clamped(n));
  state.counters["msgs_per_nloglog"] = msgs / (n * loglog2_clamped(n));
}

/// One Table 1 row: `trials` facade runs of (algorithm, Ave) at size n.
void run_ave_case(benchmark::State& state, const std::string& algorithm) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double rounds = 0, msgs = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      api::RunSpec spec;
      spec.n = n;
      spec.aggregate = api::Aggregate::kAve;
      spec.seed = seed;
      const api::RunReport r = api::run(algorithm, spec);
      rounds += r.rounds;
      msgs += static_cast<double>(r.cost.sent);
    }
  }
  set_columns(state, n, rounds / kTrials, msgs / kTrials);
}

void BM_UniformGossipAve(benchmark::State& state) { run_ave_case(state, "uniform"); }
BENCHMARK(BM_UniformGossipAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

void BM_EfficientGossipAve(benchmark::State& state) { run_ave_case(state, "efficient"); }
BENCHMARK(BM_EfficientGossipAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

// Supplementary row: pairwise averaging (Boyd et al. [1]) -- the second
// address-oblivious Average baseline; also Theta(n log n) messages.
void BM_PairwiseAve(benchmark::State& state) { run_ave_case(state, "pairwise"); }
BENCHMARK(BM_PairwiseAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

void BM_DrrGossipAve(benchmark::State& state) { run_ave_case(state, "drr"); }
BENCHMARK(BM_DrrGossipAve)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
