// Experiments E11/E13 -- Theorems 11 and 13 (Local-DRR on arbitrary graphs):
//
//   Theorem 11: every Local-DRR tree has height O(log n) whp on ANY graph.
//   Column height_max_per_log2n (max over seeds / log2 n) must stay
//   bounded across graph families and sizes.
//
//   Theorem 13: the number of trees concentrates on sum_i 1/(d_i + 1).
//   Column trees_over_pred must sit near 1.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench_common.hpp"
#include "drr/local_drr.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"
#include "topology/builders.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 6;

Graph build_family(int family, std::uint32_t n, std::uint64_t seed) {
  switch (family) {
    case 0: return make_ring(n);
    case 1: {
      const auto side = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n)));
      return make_grid(side, side, /*torus=*/true);
    }
    case 2: return make_random_regular(n, 8, seed);
    case 3: return make_erdos_renyi(n, 12.0 / n, seed);
    case 4: return make_chord_graph(n);
    case 5: return make_hypercube(ceil_log2(n));
    case 6: return make_small_world(n, 4, 0.2, seed);
    default: return make_preferential_attachment(n, 4, seed);
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0: return "ring";
    case 1: return "torus";
    case 2: return "8-regular";
    case 3: return "erdos-renyi";
    case 4: return "chord";
    case 5: return "hypercube";
    case 6: return "small-world";
    default: return "pref-attach";
  }
}

void BM_LocalDrrShape(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  RunningStat trees, height, msgs;
  double predicted = 0.0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const Graph g = build_family(family, n, seed);
      predicted = g.inverse_degree_plus_one_sum();
      RngFactory rngs{seed};
      const LocalDrrResult r = run_local_drr(g, rngs);
      trees.add(r.forest.num_trees());
      height.add(r.forest.max_tree_height());
      msgs.add(static_cast<double>(r.counters.sent) / static_cast<double>(g.edge_count()));
    }
  }
  state.SetLabel(family_name(family));
  state.counters["trees_mean"] = trees.mean();
  state.counters["trees_pred"] = predicted;
  state.counters["trees_over_pred"] = trees.mean() / predicted;
  state.counters["height_max"] = height.max();
  state.counters["height_max_per_log2n"] = height.max() / log2_clamped(n);
  state.counters["msgs_per_edge"] = msgs.mean();
}
BENCHMARK(BM_LocalDrrShape)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7}, {1 << 10, 1 << 12, 1 << 14}})
    ->Iterations(1);

// Theorem 11's "any graph" includes adversarial shapes: the path is the
// worst standard case for chain formation.
void BM_LocalDrrPathHeight(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat height;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(12)) {
      RngFactory rngs{seed};
      const LocalDrrResult r = run_local_drr(make_path(n), rngs);
      height.add(r.forest.max_tree_height());
    }
  }
  state.counters["height_max"] = height.max();
  state.counters["height_max_per_log2n"] = height.max() / log2_clamped(n);
}
BENCHMARK(BM_LocalDrrPathHeight)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
