#pragma once
// Shared helpers for the experiment harnesses.
//
// Every bench binary reproduces one table/figure/theorem of the paper (see
// DESIGN.md's per-experiment index).  Each benchmark case runs the full
// simulation across a handful of seeds and reports the measured quantities
// as google-benchmark counters -- the printed counter columns are the
// reproduced table rows.  Wall-clock time of the simulation itself is
// irrelevant to the paper's claims; all cases therefore run one iteration.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace drrg::bench {

inline std::vector<double> make_values(std::uint32_t n, std::uint64_t seed) {
  Rng rng{derive_seed(seed, 0xbe9c)};
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_uniform(-25.0, 75.0);
  return v;
}

/// Seeds used for Monte-Carlo repetition inside one bench case.
inline std::vector<std::uint64_t> trial_seeds(int trials, std::uint64_t base = 1000) {
  std::vector<std::uint64_t> s(trials);
  for (int i = 0; i < trials; ++i) s[i] = base + static_cast<std::uint64_t>(i);
  return s;
}

}  // namespace drrg::bench
