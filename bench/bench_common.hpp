#pragma once
// Shared helpers for the experiment harnesses.
//
// Every bench binary reproduces one table/figure/theorem of the paper (see
// the algorithm/aggregate matrix and per-experiment notes in README.md).
// Each benchmark case runs the full simulation across a handful of seeds
// and reports the measured quantities as google-benchmark counters -- the
// printed counter columns are the reproduced table rows.  Wall-clock time
// of the simulation itself is irrelevant to the paper's claims; all cases
// therefore run one iteration.
//
// Workload generation lives in support/workload.hpp so the benches, the
// CLI, the examples and the tests all draw the same per-seed values; the
// aliases below keep the historical bench:: spellings working.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "support/workload.hpp"

namespace drrg::bench {

inline std::vector<double> make_values(std::uint32_t n, std::uint64_t seed) {
  return workload::make_values(n, seed);
}

/// Seeds used for Monte-Carlo repetition inside one bench case.
inline std::vector<std::uint64_t> trial_seeds(int trials, std::uint64_t base = 1000) {
  return workload::trial_seeds(trials, base);
}

}  // namespace drrg::bench
