// Experiment EA -- design ablation on the DRR probe budget.
//
// Algorithm 1 fixes the probe budget at log2(n) - 1.  This ablation sweeps
// the budget and shows why that choice is the sweet spot:
//   * fewer probes  -> more roots -> Phase III gossips over more nodes,
//     pushing Phase III messages towards Theta(n) with a larger constant
//     and wasting the message budget (at budget 1 the scheme degenerates
//     towards uniform gossip's n log n);
//   * more probes   -> Phase I itself costs more messages and rounds for
//     marginal reductions in the root count (the expected probe count per
//     node saturates at O(log log n) long before the budget is exhausted).
//
// Columns: trees, max tree size, Phase I messages, Phase III messages,
// total messages, end-to-end rounds -- all per budget.

#include <benchmark/benchmark.h>

#include "aggregate/drr_gossip.hpp"
#include "bench_common.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 5;
constexpr std::uint32_t kN = 8192;  // log2 = 13 -> paper budget 12

void BM_ProbeBudget(benchmark::State& state) {
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  RunningStat trees, max_size, phase1, phase3, total, rounds;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto values = bench::make_values(kN, seed);
      DrrGossipConfig cfg;
      cfg.drr.probe_budget = budget;
      const auto r = drr_gossip_max(kN, values, seed, {}, cfg);
      trees.add(r.forest.num_trees);
      max_size.add(r.forest.max_tree_size);
      phase1.add(static_cast<double>(r.metrics.drr.sent));
      phase3.add(static_cast<double>(r.metrics.gossip.sent));
      total.add(static_cast<double>(r.metrics.total().sent));
      rounds.add(r.rounds_total);
    }
  }
  state.counters["budget"] = budget;
  state.counters["trees"] = trees.mean();
  state.counters["max_tree_size"] = max_size.mean();
  state.counters["phase1_msgs_per_n"] = phase1.mean() / kN;
  state.counters["phase3_msgs_per_n"] = phase3.mean() / kN;
  state.counters["total_msgs_per_n"] = total.mean() / kN;
  state.counters["rounds"] = rounds.mean();
}
BENCHMARK(BM_ProbeBudget)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)  // the paper's log2(n) - 1
    ->Arg(26)  // 2 log2 n: over-probing
    ->Iterations(1);

// The companion ablation: how the budget choice feeds through to the
// Phase II/III time bound via the max tree size.
void BM_ProbeBudgetTreeShape(benchmark::State& state) {
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  RunningStat size_max, height_max;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      RngFactory rngs{seed};
      DrrConfig cfg;
      cfg.probe_budget = budget;
      const DrrResult r = run_drr(kN, rngs, {}, cfg);
      size_max.add(r.forest.max_tree_size());
      height_max.add(r.forest.max_tree_height());
    }
  }
  state.counters["budget"] = budget;
  state.counters["maxsize_mean"] = size_max.mean();
  state.counters["maxheight_mean"] = height_max.mean();
  state.counters["log2_n"] = log2_clamped(kN);
}
BENCHMARK(BM_ProbeBudgetTreeShape)->Arg(1)->Arg(4)->Arg(12)->Arg(26)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
