// Experiments E2/E3 -- Theorems 2 and 3:
//
//   Theorem 2: the DRR forest has O(n / log n) trees whp.  The exact
//   expectation is sum_i (i/n)^(log2(n)-1) ~ n / log2 n; the bench
//   reports trees / (n / log2 n) (flat, near 1) and the whp check
//   trees_max / (6 * E[trees]) (must stay below 1).
//
//   Theorem 3: every tree has O(log n) nodes whp.  The bench reports the
//   mean and max (over seeds) of the largest tree size, normalised by
//   log2 n (flat => O(log n)), plus the tree-height counterpart used by
//   Phase II's time bound.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "drr/drr.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 8;

void BM_DrrForestShape(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat trees, max_size, max_height;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      RngFactory rngs{seed};
      const DrrResult r = run_drr(n, rngs);
      trees.add(r.forest.num_trees());
      max_size.add(r.forest.max_tree_size());
      max_height.add(r.forest.max_tree_height());
    }
  }
  // E[#trees] = sum_{i<=n} (i/n)^d with d = probe budget: ~ n/(d+1).
  const double d = drr_probe_budget(n);
  const double expected_trees = static_cast<double>(n) / (d + 1.0);
  state.counters["trees_mean"] = trees.mean();
  state.counters["trees_over_pred"] = trees.mean() / expected_trees;   // ~1, flat
  state.counters["trees_whp_margin"] = trees.max() / (6.0 * expected_trees);  // < 1
  state.counters["maxsize_mean"] = max_size.mean();
  state.counters["maxsize_max"] = max_size.max();
  state.counters["maxsize_per_log2n"] = max_size.max() / log2_clamped(n);  // bounded
  state.counters["maxheight_max"] = max_height.max();
  state.counters["maxheight_per_log2n"] = max_height.max() / log2_clamped(n);
}
BENCHMARK(BM_DrrForestShape)->RangeMultiplier(2)->Range(1 << 8, 1 << 16)->Iterations(1);

// Distribution detail at one size: how heavy is the tree-size tail?
void BM_DrrTreeSizeTail(benchmark::State& state) {
  const std::uint32_t n = 1 << 13;
  double p50 = 0, p95 = 0, p100 = 0;
  for (auto _ : state) {
    std::vector<double> sizes;
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      RngFactory rngs{seed};
      const DrrResult r = run_drr(n, rngs);
      for (std::uint32_t s : r.forest.tree_sizes()) sizes.push_back(s);
    }
    std::sort(sizes.begin(), sizes.end());
    p50 = quantile_sorted(sizes, 0.50);
    p95 = quantile_sorted(sizes, 0.95);
    p100 = sizes.back();
  }
  state.counters["size_p50"] = p50;
  state.counters["size_p95"] = p95;
  state.counters["size_max"] = p100;
  state.counters["log2_n"] = log2_clamped(n);
}
BENCHMARK(BM_DrrTreeSizeTail)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
