// Experiment EA2 -- ablation of the Phase III gossip schedule.
//
// The paper schedules the gossip procedure for 8 log n/(1-rho) rounds and
// the sampling procedure for (1/c) log n rounds (Theorems 5/6).  This
// ablation sweeps the two multipliers and reports where consensus starts
// to fail and what each extra scheduled round costs -- quantifying how
// much slack the defaults (4x / 2x) carry.
//
// Two sweeps at n = 4096, delta = 1/8 (the model's loss ceiling):
//   * gossip multiplier with sampling fixed at 2x;
//   * sampling multiplier with gossip fixed at 4x.
// Columns: consensus_rate (across seeds), frac_after_gossip (Theorem 5's
// observable), msgs_per_n.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "drr/drr.hpp"
#include "rootgossip/gossip_max.hpp"
#include "rootgossip/ordered_key.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 10;
constexpr std::uint32_t kN = 4096;
constexpr double kDelta = 0.125;

struct CaseResult {
  double consensus_rate = 0.0;
  double frac_after_gossip = 0.0;
  double msgs_per_n = 0.0;
};

CaseResult run_case(double gossip_mult, double sampling_mult) {
  RunningStat frac, msgs;
  int consensus = 0;
  for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
    RngFactory rngs{seed};
    const DrrResult drr = run_drr(kN, rngs, sim::FaultModel{kDelta, 0.0});
    const auto values = bench::make_values(kN, seed);
    std::vector<std::uint64_t> keys(kN, kKeyBottom);
    std::uint64_t top = kKeyBottom;
    for (NodeId r : drr.forest.roots()) {
      keys[r] = encode_ordered(values[r]);
      top = std::max(top, keys[r]);
    }
    GossipMaxConfig cfg;
    cfg.gossip_multiplier = gossip_mult;
    cfg.sampling_multiplier = sampling_mult;
    const auto gm = run_gossip_max(drr.forest, keys, rngs, sim::FaultModel{kDelta, 0.0}, cfg);
    frac.add(fraction_of_roots_with_key(drr.forest, gm.key_after_gossip, top));
    consensus += fraction_of_roots_with_key(drr.forest, gm.key, top) == 1.0 ? 1 : 0;
    msgs.add(static_cast<double>(gm.counters.sent));
  }
  return {static_cast<double>(consensus) / kTrials, frac.mean(), msgs.mean() / kN};
}

// Arg: gossip multiplier in tenths (sampling fixed at 2x).
void BM_GossipMultiplier(benchmark::State& state) {
  const double mult = static_cast<double>(state.range(0)) / 10.0;
  CaseResult r;
  for (auto _ : state) r = run_case(mult, 2.0);
  state.counters["gossip_mult"] = mult;
  state.counters["consensus_rate"] = r.consensus_rate;
  state.counters["frac_after_gossip"] = r.frac_after_gossip;
  state.counters["msgs_per_n"] = r.msgs_per_n;
}
BENCHMARK(BM_GossipMultiplier)
    ->Arg(5)    // 0.5x: far too few rounds
    ->Arg(10)   // 1x
    ->Arg(20)   // 2x
    ->Arg(40)   // 4x: the library default
    ->Arg(80)   // 8x: the paper's analysis constant
    ->Iterations(1);

// Arg: sampling multiplier in tenths (gossip fixed at 4x).
void BM_SamplingMultiplier(benchmark::State& state) {
  const double mult = static_cast<double>(state.range(0)) / 10.0;
  CaseResult r;
  for (auto _ : state) r = run_case(4.0, mult);
  state.counters["sampling_mult"] = mult;
  state.counters["consensus_rate"] = r.consensus_rate;
  state.counters["frac_after_gossip"] = r.frac_after_gossip;
  state.counters["msgs_per_n"] = r.msgs_per_n;
}
BENCHMARK(BM_SamplingMultiplier)->Arg(0)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
