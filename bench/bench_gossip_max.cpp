// Experiments E5/E6 -- Theorems 5 and 6 (Phase III, Gossip-max):
//
//   Theorem 5: after the *gossip procedure*, at least a constant fraction
//   of the roots holds the global Max whp -> column frac_after_gossip
//   (mean and min over seeds; must stay bounded away from 0).
//
//   Theorem 6: after the *sampling procedure*, ALL roots know Max whp ->
//   column consensus_rate (fraction of seeds reaching full consensus).
//
//   Phase III cost: O(n) messages -> msgs_per_n flat.
//
// Both are exercised at delta = 0 and at the model's max loss 1/8.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "drr/drr.hpp"
#include "rootgossip/gossip_max.hpp"
#include "rootgossip/ordered_key.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 10;

void run_case(benchmark::State& state, double delta) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat frac_gossip, msgs, rounds;
  int consensus = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      RngFactory rngs{seed};
      const DrrResult drr = run_drr(n, rngs, sim::FaultModel{delta, 0.0});
      const auto values = bench::make_values(n, seed);
      std::vector<std::uint64_t> keys(n, kKeyBottom);
      std::uint64_t top = kKeyBottom;
      for (NodeId r : drr.forest.roots()) {
        keys[r] = encode_ordered(values[r]);
        top = std::max(top, keys[r]);
      }
      const auto gm =
          run_gossip_max(drr.forest, keys, rngs, sim::FaultModel{delta, 0.0});
      frac_gossip.add(fraction_of_roots_with_key(drr.forest, gm.key_after_gossip, top));
      const double after =
          fraction_of_roots_with_key(drr.forest, gm.key, top);
      consensus += after == 1.0 ? 1 : 0;
      msgs.add(static_cast<double>(gm.counters.sent));
      rounds.add(gm.rounds);
    }
  }
  state.counters["frac_after_gossip_mean"] = frac_gossip.mean();
  state.counters["frac_after_gossip_min"] = frac_gossip.min();
  state.counters["consensus_rate"] = static_cast<double>(consensus) / kTrials;
  state.counters["msgs_per_n"] = msgs.mean() / n;
  state.counters["rounds"] = rounds.mean();
  state.counters["rounds_per_log"] = rounds.mean() / log2_clamped(n);
}

void BM_GossipMax(benchmark::State& state) { run_case(state, 0.0); }
BENCHMARK(BM_GossipMax)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

void BM_GossipMaxLossy(benchmark::State& state) { run_case(state, 0.125); }
BENCHMARK(BM_GossipMaxLossy)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

// Data-spread (Algorithm 5) coverage: one root's value reaches all roots.
void BM_DataSpread(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  int full = 0;
  RunningStat msgs;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      RngFactory rngs{seed};
      const DrrResult drr = run_drr(n, rngs);
      const std::uint64_t key = encode_ordered(42.0);
      const auto r =
          run_data_spread(drr.forest, drr.forest.largest_tree_root(), key, rngs);
      full += fraction_of_roots_with_key(drr.forest, r.key, key) == 1.0 ? 1 : 0;
      msgs.add(static_cast<double>(r.counters.sent));
    }
  }
  state.counters["coverage_rate"] = static_cast<double>(full) / kTrials;
  state.counters["msgs_per_n"] = msgs.mean() / n;
}
BENCHMARK(BM_DataSpread)->RangeMultiplier(8)->Range(1 << 9, 1 << 15)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
