// Experiment E15 -- empirical companion to Theorem 15 (the lower bound):
//
//   Any *address-oblivious* algorithm needs Omega(n log n) messages to
//   compute Max.  Uniform push gossip (Kempe) is address-oblivious, and
//   its measured messages-to-consensus fit c * n log n: the column
//   ao_msgs_per_nlog is flat while ao_msgs_per_n grows.
//
//   DRR-gossip is NON-address-oblivious and beats the bound: its column
//   drr_msgs_per_nloglog is flat, so the separation ao/drr grows with n
//   -- exactly the gap Theorem 15 proves unavoidable without addresses.
//
//   Karp et al. rumor spreading (also address-oblivious) needs only
//   Theta(n log log n) *transmissions*: the rumor column stays flat
//   against n log log n, demonstrating §5's second claim -- computing
//   aggregates is strictly harder than rumor spreading in the
//   address-oblivious model.

#include <benchmark/benchmark.h>

#include "aggregate/drr_gossip.hpp"
#include "baselines/uniform_gossip.hpp"
#include "bench_common.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 3;

void BM_AddressObliviousMax(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat msgs;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto values = bench::make_values(n, seed);
      const auto r = uniform_push_max(n, values, seed);
      msgs.add(static_cast<double>(r.messages_to_consensus));
    }
  }
  state.counters["ao_msgs"] = msgs.mean();
  state.counters["ao_msgs_per_n"] = msgs.mean() / n;                      // grows ~ log n
  state.counters["ao_msgs_per_nlog"] = msgs.mean() / (n * log2_clamped(n));  // flat
}
BENCHMARK(BM_AddressObliviousMax)->RangeMultiplier(2)->Range(1 << 8, 1 << 17)->Iterations(1);

void BM_NonAddressObliviousMax(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat msgs;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto values = bench::make_values(n, seed);
      const auto r = drr_gossip_max(n, values, seed);
      msgs.add(static_cast<double>(r.metrics.total().sent));
    }
  }
  state.counters["drr_msgs"] = msgs.mean();
  state.counters["drr_msgs_per_n"] = msgs.mean() / n;  // grows ~ log log n only
  state.counters["drr_msgs_per_nloglog"] = msgs.mean() / (n * loglog2_clamped(n));  // flat
}
BENCHMARK(BM_NonAddressObliviousMax)->RangeMultiplier(2)->Range(1 << 8, 1 << 17)->Iterations(1);

void BM_RumorSpreading(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat transmissions;
  double informed_rate = 0.0;
  for (auto _ : state) {
    int all = 0;
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto r = karp_push_pull(n, seed);
      transmissions.add(static_cast<double>(r.transmissions));
      all += r.all_informed ? 1 : 0;
    }
    informed_rate = static_cast<double>(all) / kTrials;
  }
  state.counters["rumor_msgs"] = transmissions.mean();
  state.counters["rumor_msgs_per_n"] = transmissions.mean() / n;
  state.counters["rumor_msgs_per_nloglog"] =
      transmissions.mean() / (n * loglog2_clamped(n));  // flat
  state.counters["informed_rate"] = informed_rate;
}
BENCHMARK(BM_RumorSpreading)->RangeMultiplier(2)->Range(1 << 8, 1 << 17)->Iterations(1);

// The separation itself: address-oblivious aggregate messages over
// non-address-oblivious messages must grow ~ log n / log log n.
void BM_Separation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double ao = 0, drr = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto values = bench::make_values(n, seed);
      ao += static_cast<double>(uniform_push_max(n, values, seed).messages_to_consensus);
      drr += static_cast<double>(drr_gossip_max(n, values, seed).metrics.total().sent);
    }
  }
  state.counters["ao_over_drr"] = ao / drr;
  state.counters["log_over_loglog"] = log2_clamped(n) / loglog2_clamped(n);
}
BENCHMARK(BM_Separation)->RangeMultiplier(4)->Range(1 << 8, 1 << 18)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
