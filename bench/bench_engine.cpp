// Experiment E -- engine micro-benchmarks for the perf trajectory.
//
// Unlike the paper-reproduction benches (whose counters are the claims),
// these cases measure the *simulator itself*: wall-clock throughput of the
// hot path in rounds/sec and messages/sec per topology, and heap
// allocations per run (the pooled-queue engine should hold this constant
// in rounds: steady-state rounds allocate nothing).
//
// tools/bench_baseline.sh runs these alongside the pinned CLI sweep and
// folds the counters into BENCH_engine.json, the machine-readable perf
// trajectory that future PRs diff against.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>
#include <string>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "support/alloc_counter.hpp"

namespace drrg {
namespace {

/// One engine case: run (algorithm, ave) once per iteration on the given
/// topology and report simulated-rounds/sec, messages/sec and the heap
/// allocation count of a single run.
void engine_case(benchmark::State& state, const std::string& algorithm,
                 sim::TopologyKind kind,
                 api::Pipeline pipeline = api::Pipeline::kDense) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  api::RunSpec spec;
  spec.n = n;
  spec.aggregate = api::Aggregate::kAve;
  spec.seed = 1000;
  spec.topology.kind = kind;
  spec.pipeline = pipeline;

  // One untimed warmup pays the one-time costs (the memoised topology
  // build in make_scenario) that a single-iteration benchmark would
  // otherwise report as the steady state -- a phantom 28x allocation
  // "regression" in the committed trajectory; the min across the timed
  // iterations guards the same way when the warmup cache is evicted by
  // an interleaved case.
  {
    const api::RunReport warm = api::run(algorithm, spec);
    if (!warm.ok()) {
      state.SkipWithError(warm.error.c_str());
      return;
    }
  }
  double rounds = 0.0;
  double msgs = 0.0;
  std::uint64_t allocs = std::numeric_limits<std::uint64_t>::max();
  for (auto _ : state) {
    const std::uint64_t a0 = support::alloc_count();
    const api::RunReport r = api::run(algorithm, spec);
    allocs = std::min(allocs, support::alloc_count() - a0);
    if (!r.ok()) {
      state.SkipWithError(r.error.c_str());
      break;  // SkipWithError requires leaving the KeepRunning loop
    }
    rounds += r.rounds;
    msgs += static_cast<double>(r.cost.sent);
  }
  if (allocs == std::numeric_limits<std::uint64_t>::max()) allocs = 0;
  state.counters["rounds_per_sec"] =
      benchmark::Counter(rounds, benchmark::Counter::kIsRate);
  state.counters["msgs_per_sec"] = benchmark::Counter(msgs, benchmark::Counter::kIsRate);
  state.counters["allocs_per_run"] = static_cast<double>(allocs);
  state.counters["msgs"] = msgs / static_cast<double>(std::max<std::size_t>(
                                      1, state.iterations()));
}

void BM_EngineDrrComplete(benchmark::State& state) {
  engine_case(state, "drr", sim::TopologyKind::kComplete);
}
BENCHMARK(BM_EngineDrrComplete)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

void BM_EngineDrrGrid(benchmark::State& state) {
  engine_case(state, "drr", sim::TopologyKind::kGrid2d);
}
BENCHMARK(BM_EngineDrrGrid)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

void BM_EngineDrrChordRing(benchmark::State& state) {
  engine_case(state, "drr", sim::TopologyKind::kChordRing);
}
BENCHMARK(BM_EngineDrrChordRing)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

void BM_EngineUniformComplete(benchmark::State& state) {
  engine_case(state, "uniform", sim::TopologyKind::kComplete);
}
BENCHMARK(BM_EngineUniformComplete)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

// The sparse pipeline's engine bill: every logical G~ send expands into
// hop-by-hop envelopes, so these cases exercise the forwarding-heavy
// delivery path (queue churn dominated by in-flight routed messages).
void BM_EngineChordDrr(benchmark::State& state) {
  engine_case(state, "chord-drr", sim::TopologyKind::kComplete);
}
BENCHMARK(BM_EngineChordDrr)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

void BM_EngineDrrSparseGrid(benchmark::State& state) {
  engine_case(state, "drr", sim::TopologyKind::kGrid2d, api::Pipeline::kSparse);
}
BENCHMARK(BM_EngineDrrSparseGrid)->RangeMultiplier(4)->Range(1 << 10, 1 << 14);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
