// Experiment EF -- the §2 failure model:
//
//   "some fraction of nodes may crash initially" and "communication can
//   fail with a certain probability delta", with 1/log n < delta < 1/8.
//
// Sweeps delta and the crash fraction and reports, for DRR-gossip-max and
// DRR-gossip-ave (run through the drrg::api facade, which also supplies
// the per-trial ground truth over the surviving nodes):
//   * correctness (Max exact over survivors; Ave relative error),
//   * consensus rate across seeds,
//   * cost inflation (messages normalised by n).

#include <benchmark/benchmark.h>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 5;
constexpr std::uint32_t kN = 2048;

/// Facade spec shared by the failure sweeps.
api::RunSpec failure_spec(api::Aggregate agg, std::uint64_t seed, double loss,
                          double crash, bool robust_push_sum = false) {
  api::RunSpec spec;
  spec.n = kN;
  spec.aggregate = agg;
  spec.seed = seed;
  spec.faults = sim::FaultModel{loss, crash};
  if (robust_push_sum) {
    DrrGossipConfig cfg;
    cfg.push_sum.rounds_multiplier = 8.0;
    spec.config = cfg;
  }
  return spec;
}

// Arg encoding: delta in per-mille.
void BM_MaxUnderLoss(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 1000.0;
  int exact = 0, consensus = 0;
  RunningStat msgs;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto r = api::run("drr", failure_spec(api::Aggregate::kMax, seed, delta, 0.0));
      exact += r.value == r.truth ? 1 : 0;
      consensus += r.consensus ? 1 : 0;
      msgs.add(static_cast<double>(r.cost.sent));
    }
  }
  state.counters["delta"] = delta;
  state.counters["exact_rate"] = static_cast<double>(exact) / kTrials;
  state.counters["consensus_rate"] = static_cast<double>(consensus) / kTrials;
  state.counters["msgs_per_n"] = msgs.mean() / kN;
}
BENCHMARK(BM_MaxUnderLoss)->Arg(0)->Arg(50)->Arg(91)->Arg(125)->Arg(250)->Iterations(1);
// 91/1000 ~ 1/log2(n) (the model's lower end), 125/1000 = 1/8 (upper end).

void BM_AveUnderLoss(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 1000.0;
  RunningStat rel_err, msgs;
  int consensus = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto r = api::run(
          "drr", failure_spec(api::Aggregate::kAve, seed, delta, 0.0, /*robust=*/true));
      rel_err.add(r.rel_error());
      consensus += r.consensus ? 1 : 0;
      msgs.add(static_cast<double>(r.cost.sent));
    }
  }
  state.counters["delta"] = delta;
  state.counters["rel_err_mean"] = rel_err.mean();
  state.counters["rel_err_max"] = rel_err.max();
  state.counters["consensus_rate"] = static_cast<double>(consensus) / kTrials;
  state.counters["msgs_per_n"] = msgs.mean() / kN;
}
BENCHMARK(BM_AveUnderLoss)->Arg(0)->Arg(50)->Arg(91)->Arg(125)->Arg(250)->Iterations(1);

// Arg encoding: crash fraction in percent.
void BM_MaxUnderCrashes(benchmark::State& state) {
  const double crash = static_cast<double>(state.range(0)) / 100.0;
  int exact = 0, consensus = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto r = api::run("drr", failure_spec(api::Aggregate::kMax, seed, 0.0, crash));
      // r.truth is the exact Max over the surviving nodes.
      exact += r.value == r.truth ? 1 : 0;
      consensus += r.consensus ? 1 : 0;
    }
  }
  state.counters["crash_fraction"] = crash;
  state.counters["exact_rate"] = static_cast<double>(exact) / kTrials;
  state.counters["consensus_rate"] = static_cast<double>(consensus) / kTrials;
}
BENCHMARK(BM_MaxUnderCrashes)->Arg(0)->Arg(10)->Arg(25)->Arg(50)->Iterations(1);

// Combined worst case: crashes plus loss at the model's ceiling.
void BM_AveUnderCrashesAndLoss(benchmark::State& state) {
  const double crash = static_cast<double>(state.range(0)) / 100.0;
  RunningStat rel_err;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto r = api::run(
          "drr", failure_spec(api::Aggregate::kAve, seed, 0.125, crash, /*robust=*/true));
      rel_err.add(r.rel_error());
    }
  }
  state.counters["crash_fraction"] = crash;
  state.counters["rel_err_mean"] = rel_err.mean();
  state.counters["rel_err_max"] = rel_err.max();
}
BENCHMARK(BM_AveUnderCrashesAndLoss)->Arg(0)->Arg(10)->Arg(25)->Iterations(1);

// Count under loss: push-sum with the single-root denominator (the paper's
// "suitable modification") versus the extrema-propagation extension --
// min-diffusion is idempotent, so its error is pure estimator noise,
// independent of delta.
void BM_CountUnderLoss(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 1000.0;
  RunningStat pushsum_err, extrema_err;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto ps = api::run(
          "drr", failure_spec(api::Aggregate::kCount, seed, delta, 0.0, /*robust=*/true));
      pushsum_err.add(ps.rel_error());
      auto espec = failure_spec(api::Aggregate::kCount, seed, delta, 0.0);
      ExtremaConfig ecfg;
      ecfg.k = 256;  // rse ~ 6.3%
      espec.config = ecfg;
      const auto ex = api::run("extrema", espec);
      extrema_err.add(ex.rel_error());
    }
  }
  state.counters["delta"] = delta;
  state.counters["pushsum_err_mean"] = pushsum_err.mean();
  state.counters["pushsum_err_max"] = pushsum_err.max();
  state.counters["extrema_err_mean"] = extrema_err.mean();
  state.counters["extrema_err_max"] = extrema_err.max();
}
BENCHMARK(BM_CountUnderLoss)->Arg(0)->Arg(50)->Arg(125)->Arg(250)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
