// Experiment EF -- the §2 failure model:
//
//   "some fraction of nodes may crash initially" and "communication can
//   fail with a certain probability delta", with 1/log n < delta < 1/8.
//
// Sweeps delta and the crash fraction and reports, for DRR-gossip-max and
// DRR-gossip-ave:
//   * correctness (Max exact over survivors; Ave relative error),
//   * consensus rate across seeds,
//   * cost inflation (messages normalised by the delta = 0 run).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "aggregate/drr_gossip.hpp"
#include "aggregate/extrema.hpp"
#include "bench_common.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 5;
constexpr std::uint32_t kN = 2048;

// Arg encoding: delta in per-mille.
void BM_MaxUnderLoss(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 1000.0;
  int exact = 0, consensus = 0;
  RunningStat msgs;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto values = bench::make_values(kN, seed);
      const auto r = drr_gossip_max(kN, values, seed, sim::FaultModel{delta, 0.0});
      exact += r.value == *std::max_element(values.begin(), values.end()) ? 1 : 0;
      consensus += r.consensus ? 1 : 0;
      msgs.add(static_cast<double>(r.metrics.total().sent));
    }
  }
  state.counters["delta"] = delta;
  state.counters["exact_rate"] = static_cast<double>(exact) / kTrials;
  state.counters["consensus_rate"] = static_cast<double>(consensus) / kTrials;
  state.counters["msgs_per_n"] = msgs.mean() / kN;
}
BENCHMARK(BM_MaxUnderLoss)->Arg(0)->Arg(50)->Arg(91)->Arg(125)->Arg(250)->Iterations(1);
// 91/1000 ~ 1/log2(n) (the model's lower end), 125/1000 = 1/8 (upper end).

void BM_AveUnderLoss(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 1000.0;
  RunningStat rel_err, msgs;
  int consensus = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto values = bench::make_values(kN, seed);
      DrrGossipConfig cfg;
      cfg.push_sum.rounds_multiplier = 8.0;
      const auto r = drr_gossip_ave(kN, values, seed, sim::FaultModel{delta, 0.0}, cfg);
      double sum = 0.0;
      for (double v : values) sum += v;
      const double ave = sum / kN;
      rel_err.add(std::fabs(r.value - ave) / std::max(1.0, std::fabs(ave)));
      consensus += r.consensus ? 1 : 0;
      msgs.add(static_cast<double>(r.metrics.total().sent));
    }
  }
  state.counters["delta"] = delta;
  state.counters["rel_err_mean"] = rel_err.mean();
  state.counters["rel_err_max"] = rel_err.max();
  state.counters["consensus_rate"] = static_cast<double>(consensus) / kTrials;
  state.counters["msgs_per_n"] = msgs.mean() / kN;
}
BENCHMARK(BM_AveUnderLoss)->Arg(0)->Arg(50)->Arg(91)->Arg(125)->Arg(250)->Iterations(1);

// Arg encoding: crash fraction in percent.
void BM_MaxUnderCrashes(benchmark::State& state) {
  const double crash = static_cast<double>(state.range(0)) / 100.0;
  int exact = 0, consensus = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto values = bench::make_values(kN, seed);
      const auto r = drr_gossip_max(kN, values, seed, sim::FaultModel{0.0, crash});
      double true_max = -1e300;
      for (std::uint32_t v = 0; v < kN; ++v)
        if (r.participating[v]) true_max = std::max(true_max, values[v]);
      exact += r.value == true_max ? 1 : 0;
      consensus += r.consensus ? 1 : 0;
    }
  }
  state.counters["crash_fraction"] = crash;
  state.counters["exact_rate"] = static_cast<double>(exact) / kTrials;
  state.counters["consensus_rate"] = static_cast<double>(consensus) / kTrials;
}
BENCHMARK(BM_MaxUnderCrashes)->Arg(0)->Arg(10)->Arg(25)->Arg(50)->Iterations(1);

// Combined worst case: crashes plus loss at the model's ceiling.
void BM_AveUnderCrashesAndLoss(benchmark::State& state) {
  const double crash = static_cast<double>(state.range(0)) / 100.0;
  RunningStat rel_err;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const auto values = bench::make_values(kN, seed);
      DrrGossipConfig cfg;
      cfg.push_sum.rounds_multiplier = 8.0;
      const auto r = drr_gossip_ave(kN, values, seed, sim::FaultModel{0.125, crash}, cfg);
      double sum = 0.0;
      std::uint32_t alive = 0;
      for (std::uint32_t v = 0; v < kN; ++v) {
        if (r.participating[v]) {
          sum += values[v];
          ++alive;
        }
      }
      const double ave = sum / alive;
      rel_err.add(std::fabs(r.value - ave) / std::max(1.0, std::fabs(ave)));
    }
  }
  state.counters["crash_fraction"] = crash;
  state.counters["rel_err_mean"] = rel_err.mean();
  state.counters["rel_err_max"] = rel_err.max();
}
BENCHMARK(BM_AveUnderCrashesAndLoss)->Arg(0)->Arg(10)->Arg(25)->Iterations(1);

// Count under loss: push-sum with the single-root denominator (the paper's
// "suitable modification") versus the extrema-propagation extension --
// min-diffusion is idempotent, so its error is pure estimator noise,
// independent of delta.
void BM_CountUnderLoss(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0)) / 1000.0;
  RunningStat pushsum_err, extrema_err;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      DrrGossipConfig cfg;
      cfg.push_sum.rounds_multiplier = 8.0;
      const auto ps = drr_gossip_count(kN, seed, sim::FaultModel{delta, 0.0}, cfg);
      pushsum_err.add(std::fabs(ps.value - kN) / kN);
      ExtremaConfig ecfg;
      ecfg.k = 256;  // rse ~ 6.3%
      const auto ex = drr_gossip_count_extrema(kN, seed, sim::FaultModel{delta, 0.0}, ecfg);
      extrema_err.add(std::fabs(ex.estimate - kN) / kN);
    }
  }
  state.counters["delta"] = delta;
  state.counters["pushsum_err_mean"] = pushsum_err.mean();
  state.counters["pushsum_err_max"] = pushsum_err.max();
  state.counters["extrema_err_mean"] = extrema_err.mean();
  state.counters["extrema_err_max"] = extrema_err.max();
}
BENCHMARK(BM_CountUnderLoss)->Arg(0)->Arg(50)->Arg(125)->Arg(250)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
