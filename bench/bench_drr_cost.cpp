// Experiment E4 -- Theorem 4: the DRR algorithm (Phase I alone) costs
// O(n log log n) messages whp and O(log n) rounds.
//
// Columns: probes_per_node (the O(log d) = O(log log n) expectation from
// the Theorem 4 proof), msgs_per_nloglog (flat => O(n log log n)),
// rounds_per_log (flat => O(log n)), and the same quantities under the
// model's maximum loss delta = 1/8.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "drr/drr.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

constexpr int kTrials = 5;

void run_case(benchmark::State& state, double delta) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat msgs, rounds, probes;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      RngFactory rngs{seed};
      const DrrResult r = run_drr(n, rngs, sim::FaultModel{delta, 0.0});
      msgs.add(static_cast<double>(r.counters.sent));
      rounds.add(r.rounds);
      probes.add(static_cast<double>(r.total_probes) / n);
    }
  }
  state.counters["msgs"] = msgs.mean();
  state.counters["msgs_per_n"] = msgs.mean() / n;
  state.counters["msgs_per_nloglog"] = msgs.mean() / (n * loglog2_clamped(n));
  state.counters["probes_per_node"] = probes.mean();
  state.counters["loglog2_n"] = loglog2_clamped(n);
  state.counters["rounds"] = rounds.mean();
  state.counters["rounds_per_log"] = rounds.mean() / log2_clamped(n);
}

void BM_DrrCost(benchmark::State& state) { run_case(state, 0.0); }
BENCHMARK(BM_DrrCost)->RangeMultiplier(2)->Range(1 << 8, 1 << 17)->Iterations(1);

void BM_DrrCostLossy(benchmark::State& state) { run_case(state, 0.125); }
BENCHMARK(BM_DrrCostLossy)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->Iterations(1);

}  // namespace
}  // namespace drrg

BENCHMARK_MAIN();
