// Experiment E7 -- Theorem 7 and Lemma 8 (Phase III, Gossip-ave):
//
//   Lemma 8: the potential Phi_t (variance of the contribution vectors)
//   halves per round in conditional expectation even though root selection
//   is proportional to tree size -> column phi_decay_mean (the measured
//   per-round ratio; must sit near or below 0.5 on average).
//
//   Theorem 7: after O(log n) rounds the relative error at z (root of the
//   largest tree) is polynomially small -> columns err_z_final and
//   rounds_to_1e6 (first round with err < 1e-6, divided by log2 n).
//
// The per-round series (round, Phi_t, err_z) is printed for one
// representative run after the counter table: this is the paper's
// "figure" for the diffusion speed.

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "drr/drr.hpp"
#include "rootgossip/gossip_ave.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace drrg::ave_bench {

constexpr int kTrials = 5;

struct AveRun {
  PushSumResult ps;
  double true_ratio = 0.0;
};

AveRun run_tracked(std::uint32_t n, std::uint64_t seed, double delta) {
  RngFactory rngs{seed};
  const DrrResult drr = run_drr(n, rngs, sim::FaultModel{delta, 0.0});
  const auto values = bench::make_values(n, seed);
  std::vector<double> num0(n, 0.0), den0(n, 0.0);
  double ns = 0.0, ds = 0.0;
  for (NodeId r : drr.forest.roots()) {
    num0[r] = values[r];
    den0[r] = drr.forest.tree_size(r);
    ns += num0[r];
    ds += den0[r];
  }
  PushSumConfig cfg;
  cfg.forward_via_trees = false;  // the G~ = clique(V~) process of the analysis
  cfg.track_potential = true;
  cfg.rounds_multiplier = 6.0;
  return {run_root_push_sum(drr.forest, num0, den0, rngs, sim::FaultModel{delta, 0.0}, cfg),
          ns / ds};
}

void run_case(benchmark::State& state, double delta) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  RunningStat decay, err_final, rounds_to_eps;
  for (auto _ : state) {
    for (std::uint64_t seed : bench::trial_seeds(kTrials)) {
      const AveRun run = run_tracked(n, seed, delta);
      const auto& phi = run.ps.potential_per_round;
      // Mean per-round decay over the window where Phi is well above
      // floating-point noise.
      double ratio_sum = 0.0;
      int ratio_count = 0;
      for (std::size_t t = 1; t < phi.size() && phi[t - 1] > 1e-20; ++t) {
        ratio_sum += phi[t] / phi[t - 1];
        ++ratio_count;
      }
      if (ratio_count > 0) decay.add(ratio_sum / ratio_count);
      const double scale = std::max(1.0, std::fabs(run.true_ratio));
      err_final.add(std::fabs(run.ps.z_estimate_per_round.back() - run.true_ratio) / scale);
      for (std::size_t t = 0; t < run.ps.z_estimate_per_round.size(); ++t) {
        if (std::fabs(run.ps.z_estimate_per_round[t] - run.true_ratio) / scale < 1e-6) {
          rounds_to_eps.add(static_cast<double>(t + 1));
          break;
        }
      }
    }
  }
  state.counters["phi_decay_mean"] = decay.mean();
  state.counters["err_z_final"] = err_final.mean();
  state.counters["rounds_to_1e6"] = rounds_to_eps.mean();
  state.counters["rounds_to_1e6_per_log"] = rounds_to_eps.mean() / log2_clamped(n);
}

void BM_GossipAveDiffusion(benchmark::State& state) { run_case(state, 0.0); }
BENCHMARK(BM_GossipAveDiffusion)->RangeMultiplier(4)->Range(1 << 8, 1 << 14)->Iterations(1);

void BM_GossipAveDiffusionLossy(benchmark::State& state) { run_case(state, 0.125); }
BENCHMARK(BM_GossipAveDiffusionLossy)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14)
    ->Iterations(1);

void print_diffusion_figure() {
  const std::uint32_t n = 4096;
  const AveRun run = run_tracked(n, /*seed=*/7, /*delta=*/0.0);
  Table t{{"round", "phi", "err_z"}};
  const double scale = std::max(1.0, std::fabs(run.true_ratio));
  for (std::size_t r = 0; r < run.ps.potential_per_round.size(); r += 2) {
    t.row()
        .add_int(static_cast<long long>(r + 1))
        .add_real(run.ps.potential_per_round[r], 10)
        .add_real(std::fabs(run.ps.z_estimate_per_round[r] - run.true_ratio) / scale, 10);
  }
  std::cout << "\nDiffusion of Gossip-ave at n = " << n
            << " (Lemma 8 figure: phi halves per round; Theorem 7: err at z)\n"
            << t.to_string();
}

}  // namespace drrg::ave_bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  drrg::ave_bench::print_diffusion_figure();
  return 0;
}
