// Tour of the whole aggregate API on one network: Max, Min, Sum, Count,
// Average, Rank and Median (the aggregate families listed in the paper's
// abstract), each invoked uniformly through the drrg::api facade, which
// also supplies the per-run ground truth over the surviving nodes.
//
//   ./aggregates_tour [n] [loss] [crash] [seed]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace drrg;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2048;
  const double loss = argc > 2 ? std::atof(argv[2]) : 0.05;
  const double crash = argc > 3 ? std::atof(argv[3]) : 0.05;
  const std::uint64_t seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 3;

  // One shared workload for every aggregate.
  Rng rng{derive_seed(seed, 0x70c6)};
  std::vector<double> values(n);
  for (auto& v : values) v = rng.next_uniform(-40.0, 140.0);

  std::printf("aggregates tour: n = %u, loss = %.0f%%, initial crashes = %.0f%%\n\n", n,
              loss * 100, crash * 100);

  // Robust push-sum schedule under faults, as in the failure benches.
  DrrGossipConfig robust;
  robust.push_sum.rounds_multiplier = 8.0;

  auto spec_for = [&](api::Aggregate agg, std::uint64_t s) {
    api::RunSpec spec;
    spec.n = n;
    spec.aggregate = agg;
    spec.seed = s;
    spec.faults = sim::FaultModel{loss, crash};
    spec.values = values;
    spec.rank_threshold = 50.0;
    spec.config = robust;
    return spec;
  };

  Table t{{"aggregate", "computed", "ground truth", "consensus", "msgs", "rounds"}};
  auto row = [&t](const std::string& name, const api::RunReport& r) {
    t.row()
        .add(name)
        .add_real(r.value, 4)
        .add_real(r.truth, 4)
        .add(r.consensus ? "yes" : "no")
        .add_uint(r.cost.sent)
        .add_uint(r.rounds);
  };

  row("Max", api::run("drr", spec_for(api::Aggregate::kMax, seed)));
  row("Min", api::run("drr", spec_for(api::Aggregate::kMin, seed + 1)));
  row("Average", api::run("drr", spec_for(api::Aggregate::kAve, seed + 2)));
  row("Sum", api::run("drr", spec_for(api::Aggregate::kSum, seed + 3)));
  row("Count", api::run("drr", spec_for(api::Aggregate::kCount, seed + 4)));

  // Loss-robust Count via extrema propagation, with k picked for ~6% rse.
  auto espec = spec_for(api::Aggregate::kCount, seed + 7);
  ExtremaConfig ecfg;
  ecfg.k = 256;
  espec.config = ecfg;
  row("Count(extrema)", api::run("extrema", espec));

  row("Rank(<50)", api::run("drr", spec_for(api::Aggregate::kRank, seed + 5)));

  QuantileConfig qc;
  qc.iterations = 20;
  auto mspec = spec_for(api::Aggregate::kMedian, seed + 6);
  mspec.config = qc;
  const auto md = api::run("drr", mspec);
  row("Median", md);

  std::printf("%s", t.to_string().c_str());
  std::printf("\n(ground truth is the exact aggregate over the surviving nodes,\n"
              " computed per run by the facade -- except the Median row, whose\n"
              " truth spans all nodes (see ROADMAP); Median binary-searches the\n"
              " value domain through repeated Rank queries, as in Kempe et al.)\n");
  return 0;
}
