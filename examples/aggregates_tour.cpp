// Tour of the whole aggregate API on one network: Max, Min, Sum, Count,
// Average, Rank and Median/Quantile (the aggregate families listed in the
// paper's abstract), each with its cost.
//
//   ./aggregates_tour [n] [loss] [crash] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "aggregate/drr_gossip.hpp"
#include "aggregate/extrema.hpp"
#include "aggregate/quantile.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace drrg;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2048;
  const double loss = argc > 2 ? std::atof(argv[2]) : 0.05;
  const double crash = argc > 3 ? std::atof(argv[3]) : 0.05;
  const std::uint64_t seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 3;

  Rng rng{derive_seed(seed, 0x70c6)};
  std::vector<double> values(n);
  for (auto& v : values) v = rng.next_uniform(-40.0, 140.0);

  const sim::FaultModel faults{loss, crash};
  std::printf("aggregates tour: n = %u, loss = %.0f%%, initial crashes = %.0f%%\n\n", n,
              loss * 100, crash * 100);

  const auto mx = drr_gossip_max(n, values, seed, faults);
  const auto mn = drr_gossip_min(n, values, seed + 1, faults);
  DrrGossipConfig robust;
  robust.push_sum.rounds_multiplier = 8.0;
  const auto av = drr_gossip_ave(n, values, seed + 2, faults, robust);
  const auto sm = drr_gossip_sum(n, values, seed + 3, faults, robust);
  const auto ct = drr_gossip_count(n, seed + 4, faults, robust);
  const auto rk = drr_gossip_rank(n, values, 50.0, seed + 5, faults, robust);
  ExtremaConfig ecfg;
  ecfg.k = 256;
  const auto ce = drr_gossip_count_extrema(n, seed + 7, faults, ecfg);
  QuantileConfig qc;
  qc.iterations = 20;
  const auto md = drr_gossip_median(n, values, seed + 6, faults, qc);

  // Ground truth over the surviving nodes (mx.participating is the same
  // crash set for every call above: it is derived from the seed-independent
  // engine stream).
  double tmax = -1e300, tmin = 1e300, tsum = 0.0;
  std::uint32_t alive = 0;
  std::vector<double> survivors;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!mx.participating[v]) continue;
    tmax = std::max(tmax, values[v]);
    tmin = std::min(tmin, values[v]);
    tsum += values[v];
    ++alive;
    survivors.push_back(values[v]);
  }
  std::sort(survivors.begin(), survivors.end());
  double trank = 0;
  for (double v : survivors) trank += v < 50.0 ? 1 : 0;

  Table t{{"aggregate", "computed", "ground truth", "consensus", "msgs", "rounds"}};
  auto row = [&t](const char* name, double got, double truth, bool consensus,
                  std::uint64_t msgs, std::uint32_t rounds) {
    t.row()
        .add(name)
        .add_real(got, 4)
        .add_real(truth, 4)
        .add(consensus ? "yes" : "no")
        .add_uint(msgs)
        .add_uint(rounds);
  };
  row("Max", mx.value, tmax, mx.consensus, mx.metrics.total().sent, mx.rounds_total);
  row("Min", mn.value, tmin, mn.consensus, mn.metrics.total().sent, mn.rounds_total);
  row("Average", av.value, tsum / alive, av.consensus, av.metrics.total().sent,
      av.rounds_total);
  row("Sum", sm.value, tsum, sm.consensus, sm.metrics.total().sent, sm.rounds_total);
  row("Count", ct.value, alive, ct.consensus, ct.metrics.total().sent, ct.rounds_total);
  row("Count(extrema)", ce.estimate, alive, ce.consensus, ce.counters.sent,
      ce.rounds_total);
  row("Rank(<50)", rk.value, trank, rk.consensus, rk.metrics.total().sent,
      rk.rounds_total);
  row("Median", md.value, survivors[survivors.size() / 2], true, md.total.sent, 0);
  std::printf("%s", t.to_string().c_str());
  std::printf("\n(the Median row aggregates %u full pipeline runs -- quantiles are\n"
              " binary-searched through repeated Rank queries, as in Kempe et al.)\n",
              md.pipeline_runs);
  return 0;
}
