// Quickstart: compute the global average of n node values with
// DRR-gossip-ave (Algorithm 8) on the random phone call model, and print
// the per-phase cost breakdown.
//
//   ./quickstart [n] [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "aggregate/drr_gossip.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4096;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  // Every node holds one value; here: a synthetic measurement.
  drrg::Rng rng{seed};
  std::vector<double> values(n);
  double sum = 0.0;
  for (auto& v : values) {
    v = rng.next_uniform(0.0, 100.0);
    sum += v;
  }

  // One call computes the average at every node.
  const drrg::AggregateOutcome out = drrg::drr_gossip_ave(n, values, seed);

  std::printf("DRR-gossip-ave on n = %u nodes (seed %llu)\n", n,
              static_cast<unsigned long long>(seed));
  std::printf("  true average       : %.6f\n", sum / n);
  std::printf("  computed average   : %.6f\n", out.value);
  std::printf("  consensus reached  : %s\n", out.consensus ? "yes" : "no");
  std::printf("  forest             : %u trees, largest %u nodes, height %u\n",
              out.forest.num_trees, out.forest.max_tree_size, out.forest.max_tree_height);
  std::printf("  total rounds       : %u  (O(log n); log2 n = %u)\n", out.rounds_total,
              drrg::ceil_log2(n));

  drrg::Table t{{"phase", "messages", "lost", "rounds"}};
  auto row = [&t](const char* name, const drrg::sim::Counters& c) {
    t.row().add(name).add_uint(c.sent).add_uint(c.lost).add_uint(c.rounds);
  };
  row("I   DRR", out.metrics.drr);
  row("II  convergecast", out.metrics.convergecast);
  row("II  root broadcast", out.metrics.root_broadcast);
  row("III gossip", out.metrics.gossip);
  row("III data-spread", out.metrics.spread);
  row("    value broadcast", out.metrics.value_broadcast);
  row("total", out.metrics.total());
  std::printf("\n%s", t.to_string().c_str());

  const double per_node = static_cast<double>(out.metrics.total().sent) / n;
  std::printf("\nmessages per node: %.2f  (O(log log n); log2 log2 n = %.2f)\n", per_node,
              drrg::loglog2_clamped(n));
  return out.consensus ? 0 : 1;
}
