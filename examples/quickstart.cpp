// Quickstart: compute the global average of n node values with
// DRR-gossip-ave (Algorithm 8) on the random phone call model through the
// drrg::api facade, and print the per-phase cost breakdown.
//
//   ./quickstart [n] [seed]

#include <cstdio>
#include <cstdlib>

#include "api/registry.hpp"
#include "support/mathutil.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4096;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  // One facade call: a synthetic measurement in [0, 100) at every node
  // (derived from the seed), averaged by the full three-phase pipeline.
  // The report carries the exact ground truth alongside the computed value.
  drrg::api::RunSpec spec;
  spec.n = n;
  spec.aggregate = drrg::api::Aggregate::kAve;
  spec.seed = seed;
  spec.workload_range = {0.0, 100.0};
  const drrg::api::RunReport out = drrg::api::run("drr", spec);
  if (!out.ok()) {
    std::fprintf(stderr, "run failed: %s\n", out.error.c_str());
    return 1;
  }

  std::printf("DRR-gossip-ave on n = %u nodes (seed %llu)\n", n,
              static_cast<unsigned long long>(seed));
  std::printf("  true average       : %.6f\n", out.truth);
  std::printf("  computed average   : %.6f  (rel. error %.2e)\n", out.value,
              out.rel_error());
  std::printf("  consensus reached  : %s\n", out.consensus ? "yes" : "no");
  std::printf("  forest             : %u trees, largest %u nodes, height %u\n",
              out.forest.num_trees, out.forest.max_tree_size, out.forest.max_tree_height);
  std::printf("  total rounds       : %u  (O(log n); log2 n = %u)\n", out.rounds,
              drrg::ceil_log2(n));

  drrg::Table t{{"phase", "messages", "lost", "rounds"}};
  auto row = [&t](const char* name, const drrg::sim::Counters& c) {
    t.row().add(name).add_uint(c.sent).add_uint(c.lost).add_uint(c.rounds);
  };
  row("I   DRR", out.phases.drr);
  row("II  convergecast", out.phases.convergecast);
  row("II  root broadcast", out.phases.root_broadcast);
  row("III gossip", out.phases.gossip);
  row("III data-spread", out.phases.spread);
  row("    value broadcast", out.phases.value_broadcast);
  row("total", out.cost);
  std::printf("\n%s", t.to_string().c_str());

  const double per_node = static_cast<double>(out.cost.sent) / n;
  std::printf("\nmessages per node: %.2f  (O(log log n); log2 log2 n = %.2f)\n", per_node,
              drrg::loglog2_clamped(n));
  return out.consensus ? 0 : 1;
}
