// P2P scenario (the §1 motivation: "in a peer-to-peer network, the average
// number of files stored at each node or the maximum size of files
// exchanged between nodes is an important statistic").
//
// n peers form a Chord overlay.  The example computes the average file
// count and the maximum file size with the sparse DRR-gossip pipeline
// (Theorem 14) and contrasts its cost with routed uniform gossip on the
// same overlay -- the log n message gap of §4.
//
//   ./p2p_chord [n] [seed]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "aggregate/sparse.hpp"
#include "baselines/chord_uniform.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace drrg;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4096;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

  const ChordOverlay chord{n, seed};
  const Graph links = overlay_graph(chord);
  std::printf("Chord overlay: %u peers, ring 2^%u, %llu links (max degree %u)\n", n,
              chord.ring_bits(), static_cast<unsigned long long>(links.edge_count()),
              links.max_degree());

  // Per-peer statistics: file count (heavy-tailed) and largest file size.
  Rng rng{derive_seed(seed, 0x9ee9)};
  std::vector<double> file_count(n), max_file_mb(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    // Pareto-ish: most peers hold little, a few hold a lot.
    const double u = rng.next_unit();
    file_count[v] = std::floor(5.0 / std::pow(1.0 - u * 0.999, 0.5));
    max_file_mb[v] = rng.next_uniform(1.0, 4096.0);
  }

  double true_count_sum = 0.0;
  for (double c : file_count) true_count_sum += c;
  const double true_max_mb = *std::max_element(max_file_mb.begin(), max_file_mb.end());

  // DRR-gossip on the overlay.
  const auto ave = sparse_drr_gossip_ave(chord, links, file_count, seed);
  const auto mx = sparse_drr_gossip_max(chord, links, max_file_mb, seed + 1);

  std::printf("\naggregates via sparse DRR-gossip (Local-DRR + routed root gossip):\n");
  std::printf("  avg files/peer : %.3f   (truth %.3f)  consensus=%s\n", ave.value,
              true_count_sum / n, ave.consensus ? "yes" : "no");
  std::printf("  max file [MB]  : %.3f   (truth %.3f)  consensus=%s\n", mx.value,
              true_max_mb, mx.consensus ? "yes" : "no");
  std::printf("  forest: %u trees (roots), largest %u peers, height %u\n",
              ave.forest.num_trees, ave.forest.max_tree_size, ave.forest.max_tree_height);

  // The §4 comparison: routed uniform gossip on the same overlay.
  const auto uni_max = chord_uniform_push_max(chord, max_file_mb, seed + 2);
  const auto uni_ave = chord_uniform_push_sum(chord, file_count, seed + 3);

  Table t{{"algorithm", "statistic", "overlay msgs", "msgs/(n log n)", "rounds"}};
  const double nlog = n * log2_clamped(n);
  t.row()
      .add("DRR-gossip")
      .add("max")
      .add_uint(mx.metrics.total().sent)
      .add_real(static_cast<double>(mx.metrics.total().sent) / nlog, 3)
      .add_uint(mx.rounds_total);
  t.row()
      .add("uniform gossip")
      .add("max")
      .add_uint(uni_max.counters.sent)
      .add_real(static_cast<double>(uni_max.counters.sent) / nlog, 3)
      .add_uint(uni_max.rounds);
  t.row()
      .add("DRR-gossip")
      .add("ave")
      .add_uint(ave.metrics.total().sent)
      .add_real(static_cast<double>(ave.metrics.total().sent) / nlog, 3)
      .add_uint(ave.rounds_total);
  t.row()
      .add("uniform gossip")
      .add("ave")
      .add_uint(uni_ave.counters.sent)
      .add_real(static_cast<double>(uni_ave.counters.sent) / nlog, 3)
      .add_uint(uni_ave.rounds);
  std::printf("\n%s", t.to_string().c_str());
  std::printf("\nmessage advantage (uniform/DRR, max): %.2fx  -- grows ~ log n (§4)\n",
              static_cast<double>(uni_max.counters.sent) /
                  static_cast<double>(mx.metrics.total().sent));
  return (ave.consensus && mx.consensus) ? 0 : 1;
}
