// P2P scenario (the §1 motivation: "in a peer-to-peer network, the average
// number of files stored at each node or the maximum size of files
// exchanged between nodes is an important statistic").
//
// n peers form a Chord overlay.  The example computes the average file
// count and the maximum file size with the sparse DRR-gossip pipeline
// (Theorem 14) and contrasts its cost with routed uniform gossip on the
// same overlay -- the log n message gap of §4.  Both pipelines run
// through the drrg::api facade: "chord-drr" and "chord-uniform" rebuild
// the identical overlay from (n, seed), so the comparison is
// like-with-like.
//
//   ./p2p_chord [n] [seed]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "aggregate/sparse.hpp"
#include "api/registry.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace drrg;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4096;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

  const ChordOverlay chord{n, seed};
  const Graph links = overlay_graph(chord);
  std::printf("Chord overlay: %u peers, ring 2^%u, %llu links (max degree %u)\n", n,
              chord.ring_bits(), static_cast<unsigned long long>(links.edge_count()),
              links.max_degree());

  // Per-peer statistics: file count (heavy-tailed) and largest file size.
  Rng rng{derive_seed(seed, 0x9ee9)};
  std::vector<double> file_count(n), max_file_mb(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    // Pareto-ish: most peers hold little, a few hold a lot.
    const double u = rng.next_unit();
    file_count[v] = std::floor(5.0 / std::pow(1.0 - u * 0.999, 0.5));
    max_file_mb[v] = rng.next_uniform(1.0, 4096.0);
  }

  auto spec_for = [&](api::Aggregate agg, const std::vector<double>& values,
                      std::uint64_t s) {
    api::RunSpec spec;
    spec.n = n;
    spec.aggregate = agg;
    spec.seed = s;
    spec.values = values;
    return spec;
  };

  // DRR-gossip on the overlay.  (Seeds match the overlay seed so the
  // facade reconstructs the same ring; distinct seeds would mean distinct
  // overlays, which is fine but not the story this example tells.)
  const auto ave = api::run("chord-drr", spec_for(api::Aggregate::kAve, file_count, seed));
  const auto mx =
      api::run("chord-drr", spec_for(api::Aggregate::kMax, max_file_mb, seed));

  std::printf("\naggregates via sparse DRR-gossip (Local-DRR + routed root gossip):\n");
  std::printf("  avg files/peer : %.3f   (truth %.3f)  consensus=%s\n", ave.value,
              ave.truth, ave.consensus ? "yes" : "no");
  std::printf("  max file [MB]  : %.3f   (truth %.3f)  consensus=%s\n", mx.value,
              mx.truth, mx.consensus ? "yes" : "no");
  std::printf("  forest: %u trees (roots), largest %u peers, height %u\n",
              ave.forest.num_trees, ave.forest.max_tree_size, ave.forest.max_tree_height);

  // The §4 comparison: routed uniform gossip on the same overlay.
  const auto uni_max =
      api::run("chord-uniform", spec_for(api::Aggregate::kMax, max_file_mb, seed));
  const auto uni_ave =
      api::run("chord-uniform", spec_for(api::Aggregate::kAve, file_count, seed));

  Table t{{"algorithm", "statistic", "overlay msgs", "msgs/(n log n)", "rounds"}};
  const double nlog = n * log2_clamped(n);
  auto row = [&](const char* algo, const char* stat, const api::RunReport& r) {
    t.row()
        .add(algo)
        .add(stat)
        .add_uint(r.cost.sent)
        .add_real(static_cast<double>(r.cost.sent) / nlog, 3)
        .add_uint(r.rounds);
  };
  row("DRR-gossip", "max", mx);
  row("uniform gossip", "max", uni_max);
  row("DRR-gossip", "ave", ave);
  row("uniform gossip", "ave", uni_ave);
  std::printf("\n%s", t.to_string().c_str());
  std::printf("\nmessage advantage (uniform/DRR, max): %.2fx  -- grows ~ log n (§4)\n",
              static_cast<double>(uni_max.cost.sent) /
                  static_cast<double>(mx.cost.sent));
  return (ave.consensus && mx.consensus) ? 0 : 1;
}
