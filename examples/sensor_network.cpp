// Sensor-network scenario (the §1 motivation: "in sensor networks, knowing
// the average or maximum remaining battery power among the sensor nodes is
// a critical statistic").
//
// n sensors are scattered uniformly over the unit square and can talk to
// neighbors within radio range (a random geometric graph).  Links are
// lossy.  Local-DRR (§4) partitions the field into shallow clusters, each
// cluster convergecasts its statistics to its head, and the per-cluster
// results are combined (in a deployment, at the base station that polls
// the heads -- radio fields have no DHT for the routed gossip phase):
//
//   * minimum remaining battery  (which sensor dies first?)
//   * average battery            (fleet health)
//   * maximum temperature        (hot spots)
//
//   ./sensor_network [n] [radius] [loss] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "drr/local_drr.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "topology/builders.hpp"
#include "trees/broadcast.hpp"
#include "trees/convergecast.hpp"

int main(int argc, char** argv) {
  using namespace drrg;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2048;
  const double radius = argc > 2 ? std::atof(argv[2]) : 0.05;
  const double loss = argc > 3 ? std::atof(argv[3]) : 0.1;
  const std::uint64_t seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 7;

  const Graph field = make_geometric(n, radius, seed);
  std::printf("sensor field: %u sensors, radio range %.3f -> %llu links (%s), loss %.0f%%\n",
              n, radius, static_cast<unsigned long long>(field.edge_count()),
              field.connected() ? "connected" : "PARTITIONED", loss * 100.0);

  // Sensor state.
  Rng rng{derive_seed(seed, 0x5e50)};
  std::vector<double> battery(n), temperature(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    battery[v] = rng.next_uniform(5.0, 100.0);      // percent
    temperature[v] = 20.0 + rng.next_normal() * 4;  // deg C
  }
  temperature[rng.next_below(n)] = 71.5;  // a hot spot worth finding

  const sim::FaultModel faults{loss, 0.0};
  RngFactory rngs{seed};

  // Phase I: Local-DRR partitions the field into shallow trees.
  const LocalDrrResult drr = run_local_drr(field, rngs, faults);
  std::printf("Local-DRR: %u trees, max size %u, max height %u, %llu msgs, %u rounds\n",
              drr.forest.num_trees(), drr.forest.max_tree_size(),
              drr.forest.max_tree_height(),
              static_cast<unsigned long long>(drr.counters.sent), drr.rounds);

  // Phase II: per-tree aggregation at the cluster heads (roots).
  const auto min_batt = run_convergecast(drr.forest, battery, ConvergecastOp::kMin, rngs, faults);
  const auto sum_batt = run_convergecast(drr.forest, battery, ConvergecastOp::kSum, rngs, faults,
                                         ConvergecastConfig{.max_rounds = 0, .stream_tag = 1});
  const auto max_temp = run_convergecast(drr.forest, temperature, ConvergecastOp::kMax, rngs,
                                         faults, ConvergecastConfig{.max_rounds = 0, .stream_tag = 2});

  // Cluster heads now hold the per-cluster statistics; in a deployment
  // they would uplink them or run the root-gossip phase.  Report the
  // overall figures a base station would compute from the heads:
  double fleet_min = 1e300, fleet_sum = 0.0, fleet_cnt = 0.0, fleet_hot = -1e300;
  for (NodeId r : drr.forest.roots()) {
    fleet_min = std::min(fleet_min, min_batt.aggregate[r]);
    fleet_sum += sum_batt.aggregate[r];
    fleet_cnt += sum_batt.weight[r];
    fleet_hot = std::max(fleet_hot, max_temp.aggregate[r]);
  }

  const double true_min = *std::min_element(battery.begin(), battery.end());
  double true_sum = 0.0;
  for (double b : battery) true_sum += b;
  const double true_hot = *std::max_element(temperature.begin(), temperature.end());

  Table t{{"statistic", "computed", "ground truth"}};
  t.row().add("min battery [%]").add_real(fleet_min, 3).add_real(true_min, 3);
  t.row().add("avg battery [%]").add_real(fleet_sum / fleet_cnt, 3).add_real(true_sum / n, 3);
  t.row().add("max temperature [C]").add_real(fleet_hot, 3).add_real(true_hot, 3);
  std::printf("\n%s", t.to_string().c_str());

  const auto total_msgs = drr.counters.sent + min_batt.counters.sent +
                          sum_batt.counters.sent + max_temp.counters.sent;
  std::printf("\ntotal radio messages: %llu (%.2f per sensor)\n",
              static_cast<unsigned long long>(total_msgs),
              static_cast<double>(total_msgs) / n);

  // Tell every sensor the fleet minimum so nodes can adapt duty cycles.
  std::vector<double> payload(n, 0.0);
  for (NodeId r : drr.forest.roots()) payload[r] = fleet_min;
  BroadcastConfig bc;
  bc.simultaneous_children = true;
  const auto down = run_broadcast(drr.forest, payload, rngs, faults, bc);
  std::printf("fleet-min dissemination: %s in %u rounds, %llu msgs\n",
              down.complete ? "complete" : "incomplete", down.rounds,
              static_cast<unsigned long long>(down.counters.sent));
  return 0;
}
